// Cross-shard top-k: the greedy chain of Section VI run globally over the
// per-shard engines.
//
// Each shard worker maintains a top-k engine (core.TopKShard) over its owned
// column blocks plus the one-query-width halo, fed by the same routed event
// stream as the single-region engines. A chain query runs the greedy chain
// at the coordinator: for every rank it collects each shard's best owned
// candidate for the current problem, selects the global winner (maximum
// score, ties to the lowest shard index), and commits it back with ApplyRank
// so the winner's covered objects become invisible to the higher-ranked
// problems — on every shard that can hold a copy of such an object, owner or
// halo. Only those few shards then re-solve the next problem; every other
// shard's cached answer provably still stands (see Query).
//
// Because the engines keep their per-cell state canonical (arrival-ordered
// storage, canonically rescored candidates) and a shard's owned cells hold
// exactly the objects a single engine's would, the merged chain reports
// bitwise the same kCCS scores as the single-engine chain; the grid chains
// (kGAPS/kMGAPS) report the same regions with canonical fold scores.
package shard

import (
	"errors"
	"math"
	"time"

	"surge/internal/core"
	"surge/internal/obs"
)

// TopKFactory builds the top-k engine for one shard. The passed config
// carries the shard's ColumnSet ownership filter; the factory must hand it
// through to the engine unchanged.
type TopKFactory func(cfg core.Config) (core.TopKShard, error)

// Op kinds of the worker-side top-k protocol (batch.op).
const (
	tkAttach  uint8 = iota // install op.eng for chain op.id, apply op.seed
	tkDetach               // remove chain op.id's engine
	tkSolve                // answer ProblemBest(op.i) on op.resc
	tkApply                // ApplyRank(op.i, op.old, op.sel), no reply
	tkDropEng              // drop the worker's single-region engine (DropEngines)
)

// tkOp is one top-k chain operation shipped to a worker inside a batch.
// Operations and event batches share the per-worker channel, so they are
// applied in exactly the order the coordinator issued them.
type tkOp struct {
	kind     uint8
	id       int // chain id
	i        int // rank / problem index, 1-based
	old, sel core.Result
	eng      core.TopKShard // tkAttach
	seed     []core.Event   // tkAttach: pre-routed seed events for this shard
	resc     chan<- tkReply // tkSolve
}

type tkReply struct {
	idx   int
	res   core.Result
	stats core.Stats
}

// TopKChain is the coordinator of one cross-shard top-k detector attached to
// a pipeline. It shares the pipeline's single-caller contract: one goroutine
// routes events and queries, the parallelism lives in the workers.
type TopKChain struct {
	p  *Pipeline
	id int
	k  int

	top   []core.Result // committed global answers, by rank
	ans   []core.Result // per-shard current problem contribution
	stats []core.Stats  // per-shard engine stats from each shard's last solve
	out   []core.Result // last resolved answer, reused across queries
	sum   core.Stats

	// Steady-state caches: per-(shard, problem) solved answers and
	// per-(shard, rank) committed selections, each stamped by a chain-local
	// monotone counter so validity checks can order solves against commits
	// (see pValid and applyIsNoop). In the steady state — answers stable,
	// events confined to a few shards — a query touches only the shards
	// whose problem-1 answer can have changed and re-commits nothing.
	ansP      [][]core.Result // [shard][problem-1] last solved answer
	ansOK     [][]bool
	ansSeq    [][]uint64      // pipeline shardSeq at the solve
	ansStamp  [][]uint64      // stamp at the solve
	rankSel   [][]core.Result // [shard][rank-1] last committed selection
	rankOK    [][]bool
	rankSeq   [][]uint64 // pipeline shardSeq at the commit
	rankStamp [][]uint64 // stamp of the commit
	stamp     uint64

	replyc   chan tkReply
	aff      []int  // affected-shard scratch
	solves   []int  // rank-stage solve scratch
	seenSeq  uint64 // routeSeq at the last resolve
	valid    bool   // out/sum hold a resolved answer
	detached bool

	// Telemetry (process-wide obs.Default). The fast path — cached answer,
	// no events since — records nothing: only actual resolves are priced.
	mResolve   *obs.Histogram // full resolve duration
	mSolveWait *obs.Histogram // time blocked on shard solve replies
	mShards    *obs.Histogram // solve ops issued per resolve
	mCommits   *obs.Counter   // ApplyRank commits shipped
}

// AttachTopK installs a top-k chain of size k on the pipeline: one engine
// per shard, built by the factory with the shard's ownership config, fed
// every subsequently routed event on the shard workers. seed is an optional
// global event sequence (in stream order) replayed into the engines before
// any new events — the caller's live windows; it is routed with the same
// halo replication as live events. Any events buffered in the router are
// shipped first, so a seed derived from the already-routed stream state is
// never applied twice.
func (p *Pipeline) AttachTopK(k int, factory TopKFactory, seed []core.Event) (*TopKChain, error) {
	if p.closed {
		return nil, errors.New("shard: pipeline is closed")
	}
	if k < 1 {
		return nil, errors.New("shard: top-k chain needs k >= 1")
	}
	engines := make([]core.TopKShard, len(p.workers))
	for i := range p.workers {
		eng, err := factory(p.shardConfig(i))
		if err != nil {
			return nil, err
		}
		engines[i] = eng
	}
	seeds := make([][]core.Event, len(p.workers))
	for _, ev := range seed {
		if !p.cfg.InArea(ev.Obj) {
			continue
		}
		for _, s := range p.targets(ev) {
			seeds[s] = append(seeds[s], ev)
		}
	}
	p.flushPending()
	id := p.nextChain
	p.nextChain++
	n := len(p.workers)
	c := &TopKChain{
		p:         p,
		id:        id,
		k:         k,
		top:       make([]core.Result, k),
		ans:       make([]core.Result, n),
		stats:     make([]core.Stats, n),
		out:       make([]core.Result, 0, k),
		ansP:      make([][]core.Result, n),
		ansOK:     make([][]bool, n),
		ansSeq:    make([][]uint64, n),
		ansStamp:  make([][]uint64, n),
		rankSel:   make([][]core.Result, n),
		rankOK:    make([][]bool, n),
		rankSeq:   make([][]uint64, n),
		rankStamp: make([][]uint64, n),
		replyc:    make(chan tkReply, n),

		mResolve:   obs.Default.Duration(obs.MTopKResolve, "Cross-shard top-k chain resolve duration (cache misses only)."),
		mSolveWait: obs.Default.Duration(obs.MTopKSolveWait, "Time the top-k coordinator spent blocked on shard solve replies."),
		mShards:    obs.Default.Values(obs.MTopKShards, "Shard solve operations issued per top-k resolve."),
		mCommits:   obs.Default.Counter(obs.MTopKCommits, "Top-k rank commits (ApplyRank) shipped to shard workers."),
	}
	for s := 0; s < n; s++ {
		c.ansP[s] = make([]core.Result, k)
		c.ansOK[s] = make([]bool, k)
		c.ansSeq[s] = make([]uint64, k)
		c.ansStamp[s] = make([]uint64, k)
		c.rankSel[s] = make([]core.Result, k)
		c.rankOK[s] = make([]bool, k)
		c.rankSeq[s] = make([]uint64, k)
		c.rankStamp[s] = make([]uint64, k)
	}
	for i, w := range p.workers {
		w.ch <- batch{op: &tkOp{kind: tkAttach, id: id, eng: engines[i], seed: seeds[i]}}
	}
	return c, nil
}

// NewTopK builds a top-k-only pipeline: the shard workers run just the
// chain's engines (no single-region engines; Query is unavailable) and the
// returned chain answers BestK-style queries via Query. Closing the pipeline
// stops the workers.
func NewTopK(cfg core.Config, shards, blockCols int, par Params, k int, factory TopKFactory) (*Pipeline, *TopKChain, error) {
	p, err := NewWithParams(cfg, shards, blockCols, par, nil)
	if err != nil {
		return nil, nil, err
	}
	c, err := p.AttachTopK(k, factory, nil)
	if err != nil {
		p.Close()
		return nil, nil, err
	}
	return p, c, nil
}

// flushPending ships the router's buffered events without a barrier.
func (p *Pipeline) flushPending() {
	for i, buf := range p.pending {
		if len(buf) > 0 {
			p.noteShip(i, len(buf))
			p.workers[i].ch <- batch{evs: buf}
			p.pending[i] = nil
		}
	}
}

// K returns the chain's k.
func (c *TopKChain) K() int { return c.k }

// pValid reports whether shard s's cached answer for problem prob (1-based)
// is still exact: the shard saw no event since the solve, and no commit at a
// rank below the problem landed on the shard after it. Only those commits
// can change what the problem sees — a demotion to rank r < prob hides an
// object from problem prob and a promotion at rank r < prob re-exposes one,
// while commits at ranks >= prob move levels only within the problem's
// visible range.
func (c *TopKChain) pValid(s, prob int) bool {
	if !c.ansOK[s][prob-1] || c.ansSeq[s][prob-1] != c.p.shardSeq[s] {
		return false
	}
	for r := 1; r < prob; r++ {
		if c.rankOK[s][r-1] && c.rankStamp[s][r-1] > c.ansStamp[s][prob-1] {
			return false
		}
	}
	return true
}

// applyIsNoop reports whether re-committing sel at rank i to shard s is a
// provable no-op, so the commit can be skipped. A re-commit with old == sel
// reduces to "demote every object covering sel's point with level > i to i"
// (the promotion pass touches nothing: all level-i covering objects are in
// the new selection's id set). Right after the shard last applied this very
// commit, no covering object sat above level i. Since then, a covering
// object can only have risen above i through a new arrival (guarded by
// shardSeq) or a promotion — and promotions happen only at commits whose
// selection changed, which re-stamp their rank — at a rank r <= i, guarded
// by comparing the other ranks' commit stamps against ours (a changed
// commit at rank i itself re-stamped rankSel, failing the equality).
func (c *TopKChain) applyIsNoop(s, i int, old, sel core.Result) bool {
	if old != sel || !c.rankOK[s][i-1] || c.rankSel[s][i-1] != sel || c.rankSeq[s][i-1] != c.p.shardSeq[s] {
		return false
	}
	for r := 1; r < i; r++ {
		if c.rankOK[s][r-1] && c.rankStamp[s][r-1] > c.rankStamp[s][i-1] {
			return false
		}
	}
	return true
}

// recordSolve caches one shard's solved problem answer.
func (c *TopKChain) recordSolve(r tkReply, prob int) {
	c.ans[r.idx] = r.res
	c.stats[r.idx] = r.stats
	c.ansP[r.idx][prob-1] = r.res
	c.ansOK[r.idx][prob-1] = true
	c.ansSeq[r.idx][prob-1] = c.p.shardSeq[r.idx]
	c.ansStamp[r.idx][prob-1] = c.stamp
}

// Query runs the cross-shard greedy chain and returns the global top-k
// regions in rank order (slots beyond the non-empty regions have Found ==
// false) together with the summed engine statistics. The returned slice is
// reused by subsequent calls.
//
// The resolve asks every shard for its problem-1 answer behind a barrier
// that flushes the routed events, then walks the ranks: select the global
// winner, commit it with ApplyRank on the shards whose blocks the winner's
// (and the previously committed answer's) coverage can reach, and re-solve
// the next problem on exactly those shards. An untouched shard's current
// contribution remains exact: had it held any object at a level <= the
// current rank, that object would cover a committed point and the shard
// would have been in the affected set — so its problems i and i+1 see
// identical content and one answer serves both.
//
// Repeat work is skipped through the per-(shard, problem) answer cache and
// the per-(shard, rank) commit record: a commit whose selection a shard
// already holds (applyIsNoop) is not re-sent, and a problem whose cached
// answer is untouched by events and later commits (pValid) is not re-solved.
// When no event at all arrived since the last resolve the whole answer is
// returned without touching the workers; in the steady state — stable
// answers, events confined to a few shards — a query costs one solve per
// event-receiving shard and nothing else.
func (c *TopKChain) Query() ([]core.Result, core.Stats, error) {
	p := c.p
	if p.closed || c.detached {
		return nil, core.Stats{}, errors.New("shard: top-k chain is closed")
	}
	if err := p.err(); err != nil {
		return nil, core.Stats{}, err
	}
	if c.valid && c.seenSeq == p.routeSeq {
		return c.out, c.sum, nil
	}
	rec := obs.On()
	var t0 time.Time
	var solveWait time.Duration
	solveOps := 0
	if rec {
		t0 = time.Now()
	}
	// Re-solve problem 1 only where it can have changed: commits never alter
	// what problem 1 sees, so a shard's cached problem-1 answer stands until
	// an event reaches the shard.
	need := 0
	for i, w := range p.workers {
		if c.pValid(i, 1) {
			c.ans[i] = c.ansP[i][0]
			continue
		}
		if n := len(p.pending[i]); n > 0 {
			p.noteShip(i, n)
		}
		w.ch <- batch{evs: p.pending[i], op: &tkOp{kind: tkSolve, id: c.id, i: 1, resc: c.replyc}}
		p.pending[i] = nil
		need++
	}
	solveOps += need
	if rec && need > 0 {
		w0 := time.Now()
		for ; need > 0; need-- {
			c.recordSolve(<-c.replyc, 1)
		}
		solveWait += time.Since(w0)
	}
	for ; need > 0; need-- {
		c.recordSolve(<-c.replyc, 1)
	}
	for i := 1; i <= c.k; i++ {
		var sel core.Result
		for _, r := range c.ans {
			if core.CompareTopK(r, sel) < 0 {
				sel = r
			}
		}
		old := c.top[i-1]
		c.top[i-1] = sel
		if i == c.k {
			// Committing the last rank is a provable no-op for every engine
			// family: levels are capped at k (demotion to k of an lvl-k
			// object and promotion of an lvl-k object both no-op) and a
			// geometric mask for rank k is never read by problems <= k.
			break
		}
		c.aff = p.affectedShards(c.aff[:0], old, sel)
		c.solves = c.solves[:0]
		for _, s := range c.aff {
			if !c.applyIsNoop(s, i, old, sel) {
				p.workers[s].ch <- batch{op: &tkOp{kind: tkApply, id: c.id, i: i, old: old, sel: sel}}
				if rec {
					c.mCommits.Inc()
				}
				c.stamp++
				c.rankSel[s][i-1] = sel
				c.rankOK[s][i-1] = true
				c.rankSeq[s][i-1] = p.shardSeq[s]
				c.rankStamp[s][i-1] = c.stamp
			}
			// A commit just sent stamped rank i above the cached answer's
			// solve, so pValid fails and the shard re-solves; a skipped
			// commit leaves a still-valid cache servable as-is.
			if c.pValid(s, i+1) {
				c.ans[s] = c.ansP[s][i]
				continue
			}
			c.solves = append(c.solves, s)
		}
		for _, s := range c.solves {
			p.workers[s].ch <- batch{op: &tkOp{kind: tkSolve, id: c.id, i: i + 1, resc: c.replyc}}
		}
		solveOps += len(c.solves)
		if rec && len(c.solves) > 0 {
			w0 := time.Now()
			for range c.solves {
				c.recordSolve(<-c.replyc, i+1)
			}
			solveWait += time.Since(w0)
		} else {
			for range c.solves {
				c.recordSolve(<-c.replyc, i+1)
			}
		}
	}
	// Solve replies arrive after a panicking worker records its failure, so
	// a crash during this resolve is visible here; the zombie zero answers
	// polluting the caches are unreachable (every later Query errors too).
	if err := p.err(); err != nil {
		return nil, core.Stats{}, err
	}
	if rec {
		c.mResolve.Observe(time.Since(t0))
		c.mSolveWait.Observe(solveWait)
		c.mShards.Record(uint64(solveOps))
	}
	c.out = append(c.out[:0], c.top...)
	var st core.Stats
	for _, s := range c.stats {
		st.Events += s.Events
		st.Searches += s.Searches
		st.SearchEvents += s.SearchEvents
		st.SweepEntries += s.SweepEntries
		st.CellsTouched += s.CellsTouched
	}
	c.sum = st
	c.seenSeq = p.routeSeq
	c.valid = true
	return c.out, c.sum, nil
}

// affectedShards appends the distinct shards that can hold a copy of an
// object covering either result's bursty point. An object covering p lies at
// x in [p.X-Width, p.X), and the router replicates it to the owners of
// columns floor(x/Width)..floor((x+Width)/Width); by the monotonicity of
// float division both bounds are bracketed by the same expressions evaluated
// at the interval's endpoints, so the owners of columns
// floor((p.X-Width)/Width)..floor((p.X+Width)/Width) are a (tight,
// conservative) superset. Shards outside the set provably hold no copy and
// their chain state is untouched by the commit.
func (p *Pipeline) affectedShards(dst []int, rs ...core.Result) []int {
	for _, r := range rs {
		if !r.Found {
			continue
		}
		lo := int(math.Floor((r.Point.X - p.cfg.Width) / p.cfg.Width))
		hi := int(math.Floor((r.Point.X + p.cfg.Width) / p.cfg.Width))
		for m := lo; m <= hi; m++ {
			s := p.cs.ShardOf(m)
			dup := false
			for _, d := range dst {
				if d == s {
					dup = true
					break
				}
			}
			if !dup {
				dst = append(dst, s)
			}
		}
	}
	return dst
}

// Close detaches the chain from the pipeline: the workers drop its engines
// and stop maintaining them. Queries fail afterwards; callers that need the
// final answer must Query before closing. Closing an already-detached chain
// or a chain on a closed pipeline is a no-op.
func (c *TopKChain) Close() {
	if c.detached {
		return
	}
	c.detached = true
	if c.p.closed {
		return
	}
	for _, w := range c.p.workers {
		w.ch <- batch{op: &tkOp{kind: tkDetach, id: c.id}}
	}
}
