// Cross-shard top-k: the greedy chain of Section VI run globally over the
// per-shard engines.
//
// Each shard worker maintains a top-k engine (core.TopKShard) over its owned
// column blocks plus the one-query-width halo, fed by the same routed event
// stream as the single-region engines. A chain query runs the greedy chain
// at the coordinator: for every rank it collects each shard's best owned
// candidate for the current problem, selects the global winner (maximum
// score, ties to the lowest shard index), and commits it back with ApplyRank
// so the winner's covered objects become invisible to the higher-ranked
// problems — on every shard that can hold a copy of such an object, owner or
// halo. Only those few shards then re-solve the next problem; every other
// shard's cached answer provably still stands (see Query).
//
// Because the engines keep their per-cell state canonical (arrival-ordered
// storage, canonically rescored candidates) and a shard's owned cells hold
// exactly the objects a single engine's would, the merged chain reports
// bitwise the same kCCS scores as the single-engine chain; the grid chains
// (kGAPS/kMGAPS) report the same regions with canonical fold scores.
package shard

import (
	"errors"
	"math"

	"surge/internal/core"
)

// TopKFactory builds the top-k engine for one shard. The passed config
// carries the shard's ColumnSet ownership filter; the factory must hand it
// through to the engine unchanged.
type TopKFactory func(cfg core.Config) (core.TopKShard, error)

// Op kinds of the worker-side top-k protocol (batch.op).
const (
	tkAttach uint8 = iota // install op.eng for chain op.id, apply op.seed
	tkDetach              // remove chain op.id's engine
	tkSolve               // answer ProblemBest(op.i) on op.resc
	tkApply               // ApplyRank(op.i, op.old, op.sel), no reply
)

// tkOp is one top-k chain operation shipped to a worker inside a batch.
// Operations and event batches share the per-worker channel, so they are
// applied in exactly the order the coordinator issued them.
type tkOp struct {
	kind     uint8
	id       int // chain id
	i        int // rank / problem index, 1-based
	old, sel core.Result
	eng      core.TopKShard // tkAttach
	seed     []core.Event   // tkAttach: pre-routed seed events for this shard
	resc     chan<- tkReply // tkSolve
}

type tkReply struct {
	idx   int
	res   core.Result
	stats core.Stats
}

// TopKChain is the coordinator of one cross-shard top-k detector attached to
// a pipeline. It shares the pipeline's single-caller contract: one goroutine
// routes events and queries, the parallelism lives in the workers.
type TopKChain struct {
	p  *Pipeline
	id int
	k  int

	top      []core.Result // committed global answers, by rank
	ans      []core.Result // per-shard cached problem answers
	lastProb []int         // problem index each cached answer solved
	seenSh   []uint64      // pipeline shardSeq at each shard's last solve
	stats    []core.Stats  // per-shard engine stats from the last resolve
	out      []core.Result // last resolved answer, reused across queries
	sum      core.Stats

	replyc   chan tkReply
	aff      []int  // affected-shard scratch
	seenSeq  uint64 // routeSeq at the last resolve
	valid    bool   // out/sum hold a resolved answer
	detached bool
}

// AttachTopK installs a top-k chain of size k on the pipeline: one engine
// per shard, built by the factory with the shard's ownership config, fed
// every subsequently routed event on the shard workers. seed is an optional
// global event sequence (in stream order) replayed into the engines before
// any new events — the caller's live windows; it is routed with the same
// halo replication as live events. Any events buffered in the router are
// shipped first, so a seed derived from the already-routed stream state is
// never applied twice.
func (p *Pipeline) AttachTopK(k int, factory TopKFactory, seed []core.Event) (*TopKChain, error) {
	if p.closed {
		return nil, errors.New("shard: pipeline is closed")
	}
	if k < 1 {
		return nil, errors.New("shard: top-k chain needs k >= 1")
	}
	engines := make([]core.TopKShard, len(p.workers))
	for i := range p.workers {
		eng, err := factory(p.shardConfig(i))
		if err != nil {
			return nil, err
		}
		engines[i] = eng
	}
	seeds := make([][]core.Event, len(p.workers))
	for _, ev := range seed {
		if !p.cfg.InArea(ev.Obj) {
			continue
		}
		for _, s := range p.targets(ev) {
			seeds[s] = append(seeds[s], ev)
		}
	}
	p.flushPending()
	id := p.nextChain
	p.nextChain++
	c := &TopKChain{
		p:        p,
		id:       id,
		k:        k,
		top:      make([]core.Result, k),
		ans:      make([]core.Result, len(p.workers)),
		lastProb: make([]int, len(p.workers)),
		seenSh:   make([]uint64, len(p.workers)),
		stats:    make([]core.Stats, len(p.workers)),
		out:      make([]core.Result, 0, k),
		replyc:   make(chan tkReply, len(p.workers)),
	}
	for i, w := range p.workers {
		w.ch <- batch{op: &tkOp{kind: tkAttach, id: id, eng: engines[i], seed: seeds[i]}}
	}
	return c, nil
}

// NewTopK builds a top-k-only pipeline: the shard workers run just the
// chain's engines (no single-region engines; Query is unavailable) and the
// returned chain answers BestK-style queries via Query. Closing the pipeline
// stops the workers.
func NewTopK(cfg core.Config, shards, blockCols int, par Params, k int, factory TopKFactory) (*Pipeline, *TopKChain, error) {
	p, err := NewWithParams(cfg, shards, blockCols, par, nil)
	if err != nil {
		return nil, nil, err
	}
	c, err := p.AttachTopK(k, factory, nil)
	if err != nil {
		p.Close()
		return nil, nil, err
	}
	return p, c, nil
}

// flushPending ships the router's buffered events without a barrier.
func (p *Pipeline) flushPending() {
	for i, buf := range p.pending {
		if len(buf) > 0 {
			p.workers[i].ch <- batch{evs: buf}
			p.pending[i] = nil
		}
	}
}

// K returns the chain's k.
func (c *TopKChain) K() int { return c.k }

// Query runs the cross-shard greedy chain and returns the global top-k
// regions in rank order (slots beyond the non-empty regions have Found ==
// false) together with the summed engine statistics. The returned slice is
// reused by subsequent calls.
//
// The resolve asks every shard for its problem-1 answer behind a barrier
// that flushes the routed events, then walks the ranks: select the global
// winner, commit it with ApplyRank on the shards whose blocks the winner's
// (and the previously committed answer's) coverage can reach, and re-solve
// the next problem on exactly those shards. An untouched shard's cached
// answer remains exact: had it held any object at a level <= the current
// rank, that object would cover a committed point and the shard would have
// been in the affected set — so its problems i and i+1 see identical content
// and one answer serves both. When no event arrived since the last resolve
// the cached answer is returned without touching the workers.
func (c *TopKChain) Query() ([]core.Result, core.Stats, error) {
	p := c.p
	if p.closed || c.detached {
		return nil, core.Stats{}, errors.New("shard: top-k chain is closed")
	}
	if c.valid && c.seenSeq == p.routeSeq {
		return c.out, c.sum, nil
	}
	// Re-solve problem 1 only where it can have changed: a shard whose
	// cached answer already solves problem 1 and that received no event
	// since that solve would answer identically, so its cache stands. (A
	// shard affected by a rank commit was re-solved at the next problem,
	// which set its lastProb above 1, so it cannot take this skip.)
	need := 0
	for i, w := range p.workers {
		if c.valid && c.lastProb[i] == 1 && c.seenSh[i] == p.shardSeq[i] {
			continue
		}
		w.ch <- batch{evs: p.pending[i], op: &tkOp{kind: tkSolve, id: c.id, i: 1, resc: c.replyc}}
		p.pending[i] = nil
		need++
	}
	for ; need > 0; need-- {
		r := <-c.replyc
		c.ans[r.idx] = r.res
		c.stats[r.idx] = r.stats
		c.lastProb[r.idx] = 1
		c.seenSh[r.idx] = p.shardSeq[r.idx]
	}
	for i := 1; i <= c.k; i++ {
		var sel core.Result
		for _, r := range c.ans {
			if core.CompareTopK(r, sel) < 0 {
				sel = r
			}
		}
		old := c.top[i-1]
		c.top[i-1] = sel
		if i == c.k {
			// Committing the last rank is a provable no-op for every engine
			// family: levels are capped at k (demotion to k of an lvl-k
			// object and promotion of an lvl-k object both no-op) and a
			// geometric mask for rank k is never read by problems <= k.
			break
		}
		c.aff = p.affectedShards(c.aff[:0], old, sel)
		for _, s := range c.aff {
			p.workers[s].ch <- batch{op: &tkOp{kind: tkApply, id: c.id, i: i, old: old, sel: sel}}
		}
		for _, s := range c.aff {
			p.workers[s].ch <- batch{op: &tkOp{kind: tkSolve, id: c.id, i: i + 1, resc: c.replyc}}
		}
		for range c.aff {
			r := <-c.replyc
			c.ans[r.idx] = r.res
			c.stats[r.idx] = r.stats
			c.lastProb[r.idx] = i + 1
		}
	}
	c.out = append(c.out[:0], c.top...)
	var st core.Stats
	for _, s := range c.stats {
		st.Events += s.Events
		st.Searches += s.Searches
		st.SearchEvents += s.SearchEvents
		st.SweepEntries += s.SweepEntries
		st.CellsTouched += s.CellsTouched
	}
	c.sum = st
	c.seenSeq = p.routeSeq
	c.valid = true
	return c.out, c.sum, nil
}

// affectedShards appends the distinct shards that can hold a copy of an
// object covering either result's bursty point. An object covering p lies at
// x in [p.X-Width, p.X), and the router replicates it to the owners of
// columns floor(x/Width)..floor((x+Width)/Width); by the monotonicity of
// float division both bounds are bracketed by the same expressions evaluated
// at the interval's endpoints, so the owners of columns
// floor((p.X-Width)/Width)..floor((p.X+Width)/Width) are a (tight,
// conservative) superset. Shards outside the set provably hold no copy and
// their chain state is untouched by the commit.
func (p *Pipeline) affectedShards(dst []int, rs ...core.Result) []int {
	for _, r := range rs {
		if !r.Found {
			continue
		}
		lo := int(math.Floor((r.Point.X - p.cfg.Width) / p.cfg.Width))
		hi := int(math.Floor((r.Point.X + p.cfg.Width) / p.cfg.Width))
		for m := lo; m <= hi; m++ {
			s := p.cs.ShardOf(m)
			dup := false
			for _, d := range dst {
				if d == s {
					dup = true
					break
				}
			}
			if !dup {
				dst = append(dst, s)
			}
		}
	}
	return dst
}

// Close detaches the chain from the pipeline: the workers drop its engines
// and stop maintaining them. Queries fail afterwards; callers that need the
// final answer must Query before closing. Closing an already-detached chain
// or a chain on a closed pipeline is a no-op.
func (c *TopKChain) Close() {
	if c.detached {
		return
	}
	c.detached = true
	if c.p.closed {
		return
	}
	for _, w := range c.p.workers {
		w.ch <- batch{op: &tkOp{kind: tkDetach, id: c.id}}
	}
}
