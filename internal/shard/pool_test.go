package shard

import (
	"sync/atomic"
	"testing"
)

// TestPoolStickyOrdering pins the routing contract: closures submitted
// under the same key run on one worker in submission order, so per-key
// state needs no lock.
func TestPoolStickyOrdering(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	const keys, per = 16, 200
	seqs := make([][]int, keys) // written only by each key's worker
	for round := 0; round < per; round++ {
		for k := 0; k < keys; k++ {
			k, round := k, round
			p.Submit(k, func() { seqs[k] = append(seqs[k], round) })
		}
	}
	p.Wait()
	for k, seq := range seqs {
		if len(seq) != per {
			t.Fatalf("key %d ran %d closures, want %d", k, len(seq), per)
		}
		for i, v := range seq {
			if v != i {
				t.Fatalf("key %d ran round %d at position %d: sticky order broken", k, v, i)
			}
		}
	}
}

// TestPoolBarrier pins the Wait contract: everything submitted before Wait
// has finished when Wait returns, across repeated barriers.
func TestPoolBarrier(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	var done atomic.Int64
	for round := 1; round <= 50; round++ {
		for i := 0; i < 7; i++ {
			p.Submit(i, func() { done.Add(1) })
		}
		p.Wait()
		if got := done.Load(); got != int64(round*7) {
			t.Fatalf("after barrier %d: %d closures done, want %d", round, got, round*7)
		}
	}
}

// TestPoolPanicKeepsWorkerAlive pins the recover backstop: a panicking
// closure neither kills its worker (later submissions to the same key still
// run) nor wedges the barrier.
func TestPoolPanicKeepsWorkerAlive(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	p.Submit(1, func() { panic("injected") })
	p.Wait() // must not hang on the panicked closure's wg slot

	ran := false
	p.Submit(1, func() { ran = true })
	p.Wait()
	if !ran {
		t.Fatal("worker died with the panicking closure")
	}
}

// TestPoolSizeClamp: worker counts below 1 are lifted, and Close is
// idempotent.
func TestPoolSizeClamp(t *testing.T) {
	p := NewPool(0)
	if p.Size() != 1 {
		t.Fatalf("NewPool(0) size %d, want 1", p.Size())
	}
	p.Submit(5, func() {}) // any key routes into the single worker
	p.Wait()
	p.Close()
	p.Close()
}
