package shard

import (
	"strings"
	"testing"
	"time"

	"surge/internal/core"
)

// within runs fn on its own goroutine and fails the test if it does not
// return in time — the panic-containment tests assert "no deadlock", and a
// hung barrier would otherwise only surface as the package-level timeout.
func within(t *testing.T, d time.Duration, name string, fn func()) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		defer close(done)
		fn()
	}()
	select {
	case <-done:
	case <-time.After(d):
		t.Fatalf("%s did not return within %v (barrier deadlock?)", name, d)
	}
}

// panicEngine is a single-region engine that panics in Process after `after`
// events, or in Best when bestBoom is set.
type panicEngine struct {
	after    int
	n        int
	bestBoom bool
}

func (e *panicEngine) Process(core.Event) {
	e.n++
	if e.n > e.after {
		panic("injected engine panic (process)")
	}
}

func (e *panicEngine) Best() core.Result {
	if e.bestBoom {
		panic("injected engine panic (best)")
	}
	return core.Result{}
}

// TestPanicInProcessSurfacesOnQuery crashes one shard's engine mid-stream
// and checks the pipeline converts the panic into a Query error — with the
// shard identified — instead of crashing the process or hanging the
// barrier, and that routing and closing still work afterwards.
func TestPanicInProcessSurfacesOnQuery(t *testing.T) {
	p, err := New(testCfg(), 2, 1, func(c core.Config) (core.Engine, error) {
		if c.Cols.Index == 0 {
			return &panicEngine{after: 0}, nil
		}
		return &captureEngine{cfg: c, score: 1}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// x = 0.5 covers columns 0 and 1, reaching both shards; shard 0 panics
	// on its first event.
	p.Route(core.Event{Kind: core.New, Obj: core.Object{ID: 1, X: 0.5, Y: 0.5, Weight: 1, T: 1}})
	var qerr error
	within(t, 10*time.Second, "Query after panic", func() {
		_, _, qerr = p.Query()
	})
	if qerr == nil {
		t.Fatal("Query returned no error after an engine panic")
	}
	if !strings.Contains(qerr.Error(), "shard 0") || !strings.Contains(qerr.Error(), "panicked") {
		t.Fatalf("panic error does not identify the shard: %v", qerr)
	}
	if !strings.Contains(qerr.Error(), "panic_test.go") {
		t.Fatalf("panic error carries no stack: %v", qerr)
	}

	// The failed pipeline must stay drainable: routing a backlog far past
	// the channel depth cannot block, and every later Query reports the
	// same first error.
	within(t, 10*time.Second, "Route after panic", func() {
		for i := 0; i < 20*chanDepth*MaxFlush; i++ {
			p.Route(core.Event{Kind: core.New, Obj: core.Object{ID: uint64(i + 2), X: 0.5, Y: 0.5, Weight: 1, T: 2}})
		}
	})
	within(t, 10*time.Second, "second Query", func() {
		_, _, err = p.Query()
	})
	if err == nil || err.Error() != qerr.Error() {
		t.Fatalf("second Query error = %v, want the recorded first panic", err)
	}
	within(t, 10*time.Second, "Close after panic", func() {
		if cerr := p.Close(); cerr != nil {
			t.Errorf("Close after panic: %v", cerr)
		}
	})
}

// TestPanicInBestSurfacesOnQuery crashes an engine inside the barrier
// answer itself: the reply must still be delivered so the merge completes,
// and the same Query must report the failure.
func TestPanicInBestSurfacesOnQuery(t *testing.T) {
	p, err := New(testCfg(), 2, 1, func(c core.Config) (core.Engine, error) {
		if c.Cols.Index == 1 {
			return &panicEngine{after: 1 << 30, bestBoom: true}, nil
		}
		return &captureEngine{cfg: c, score: 1}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var qerr error
	within(t, 10*time.Second, "Query with panicking Best", func() {
		_, _, qerr = p.Query()
	})
	if qerr == nil || !strings.Contains(qerr.Error(), "shard 1") {
		t.Fatalf("Query error = %v, want shard 1 panic", qerr)
	}
	within(t, 10*time.Second, "Close", func() { p.Close() })
}

// panicTopK is a top-k shard engine whose ProblemBest panics.
type panicTopK struct{}

func (panicTopK) Process(core.Event)                      {}
func (panicTopK) BestK() []core.Result                    { return nil }
func (panicTopK) ProblemBest(int) core.Result             { panic("injected engine panic (solve)") }
func (panicTopK) ApplyRank(int, core.Result, core.Result) {}

// okTopK is a healthy no-answer top-k shard engine.
type okTopK struct{}

func (okTopK) Process(core.Event)                      {}
func (okTopK) BestK() []core.Result                    { return nil }
func (okTopK) ProblemBest(int) core.Result             { return core.Result{} }
func (okTopK) ApplyRank(int, core.Result, core.Result) {}

// TestPanicInTopKSolve crashes one shard's chain engine inside a solve: the
// coordinator's reply loop must still complete (zero reply from the
// recovering worker) and the chain Query must report the panic, now and on
// every later call.
func TestPanicInTopKSolve(t *testing.T) {
	p, c, err := NewTopK(testCfg(), 3, 1, Params{}, 2, func(cfg core.Config) (core.TopKShard, error) {
		if cfg.Cols.Index == 2 {
			return panicTopK{}, nil
		}
		return okTopK{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var qerr error
	within(t, 10*time.Second, "chain Query with panicking solve", func() {
		_, _, qerr = c.Query()
	})
	if qerr == nil || !strings.Contains(qerr.Error(), "shard 2") || !strings.Contains(qerr.Error(), "panicked") {
		t.Fatalf("chain Query error = %v, want shard 2 panic", qerr)
	}
	within(t, 10*time.Second, "second chain Query", func() {
		_, _, err = c.Query()
	})
	if err == nil {
		t.Fatal("second chain Query returned no error")
	}
	within(t, 10*time.Second, "Close", func() {
		c.Close()
		p.Close()
	})
}
