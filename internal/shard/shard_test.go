package shard

import (
	"math"
	"math/rand/v2"
	"sync"
	"testing"

	"surge/internal/core"
)

func testCfg() core.Config {
	return core.Config{Width: 1, Height: 1, WC: 10, WP: 10, Alpha: 0.5}
}

// TestColumnSetTiling checks that every column is owned by exactly one shard
// and that block striping is uniform, including across zero and negative
// columns.
func TestColumnSetTiling(t *testing.T) {
	for _, tc := range []struct{ block, shards int }{
		{1, 1}, {1, 2}, {2, 3}, {4, 4}, {3, 5}, {7, 2},
	} {
		sets := make([]*core.ColumnSet, tc.shards)
		for i := range sets {
			sets[i] = &core.ColumnSet{Block: tc.block, Shards: tc.shards, Index: i}
		}
		prevOwner := -1
		run := 0
		// Start block-aligned so run-length accounting sees whole blocks.
		start := -10 * tc.block * tc.shards
		for m := start; m <= 50; m++ {
			owner := -1
			for i, s := range sets {
				if s.Owns(m) {
					if owner != -1 {
						t.Fatalf("block=%d shards=%d: column %d owned by shards %d and %d",
							tc.block, tc.shards, m, owner, i)
					}
					owner = i
				}
			}
			if owner == -1 {
				t.Fatalf("block=%d shards=%d: column %d unowned", tc.block, tc.shards, m)
			}
			if owner != sets[0].ShardOf(m) {
				t.Fatalf("Owns and ShardOf disagree at column %d", m)
			}
			// Ownership must change only at block boundaries: runs of equal
			// owner are exactly Block long (unless Shards == 1).
			if owner == prevOwner {
				run++
			} else {
				if prevOwner != -1 && tc.shards > 1 && run%tc.block != 0 {
					t.Fatalf("block=%d shards=%d: owner run of %d columns ending at %d",
						tc.block, tc.shards, run, m)
				}
				prevOwner, run = owner, 1
			}
		}
	}
}

func TestColumnSetValidate(t *testing.T) {
	bad := []core.ColumnSet{
		{Block: 0, Shards: 1, Index: 0},
		{Block: 1, Shards: 0, Index: 0},
		{Block: 1, Shards: 2, Index: 2},
		{Block: 1, Shards: 2, Index: -1},
	}
	for _, s := range bad {
		s := s
		if err := s.Validate(); err == nil {
			t.Errorf("ColumnSet %+v validated", s)
		}
	}
	var nilSet *core.ColumnSet
	if err := nilSet.Validate(); err != nil {
		t.Errorf("nil ColumnSet rejected: %v", err)
	}
	if !nilSet.Owns(7) {
		t.Error("nil ColumnSet must own every column")
	}
}

// captureEngine records the events it receives; Best reports a fixed score.
type captureEngine struct {
	mu    sync.Mutex
	cfg   core.Config
	objsX []float64
	score float64
}

func (c *captureEngine) Process(ev core.Event) {
	c.mu.Lock()
	c.objsX = append(c.objsX, ev.Obj.X)
	c.mu.Unlock()
}

func (c *captureEngine) Best() core.Result {
	if c.score <= 0 {
		return core.Result{}
	}
	return core.Result{Score: c.score, Found: true}
}

// TestRoutingHaloInvariant feeds random events and checks that every shard
// received exactly the objects whose coverage rectangle touches one of its
// owned columns — the halo invariant the engines' exactness rests on.
func TestRoutingHaloInvariant(t *testing.T) {
	cfg := testCfg()
	const shards, block = 3, 2
	engines := make([]*captureEngine, shards)
	p, err := New(cfg, shards, block, func(c core.Config) (core.Engine, error) {
		e := &captureEngine{cfg: c}
		engines[c.Cols.Index] = e
		return e, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	rng := rand.New(rand.NewPCG(7, 11))
	var xs []float64
	for i := 0; i < 4000; i++ {
		x := rng.Float64()*40 - 20
		xs = append(xs, x)
		p.Route(core.Event{Kind: core.New, Obj: core.Object{ID: uint64(i), X: x, Y: rng.Float64(), Weight: 1, T: float64(i)}})
	}
	if _, _, err := p.Query(); err != nil {
		t.Fatal(err)
	}

	cs := &core.ColumnSet{Block: block, Shards: shards}
	for idx, e := range engines {
		want := map[float64]bool{}
		for _, x := range xs {
			i0 := int(math.Floor(x / cfg.Width))
			i1 := int(math.Floor((x + cfg.Width) / cfg.Width))
			if i1 < i0+1 {
				i1 = i0 + 1
			}
			for m := i0; m <= i1; m++ {
				if cs.ShardOf(m) == idx {
					want[x] = true
				}
			}
		}
		got := map[float64]bool{}
		for _, x := range e.objsX {
			if got[x] {
				t.Fatalf("shard %d received object x=%v twice", idx, x)
			}
			got[x] = true
		}
		if len(got) != len(want) {
			t.Fatalf("shard %d received %d objects, want %d", idx, len(got), len(want))
		}
		for x := range want {
			if !got[x] {
				t.Fatalf("shard %d missing object x=%v", idx, x)
			}
		}
	}
}

// TestQueryMergeTieBreak checks the merger prefers the maximum score and
// breaks exact ties by the lowest shard index.
func TestQueryMergeTieBreak(t *testing.T) {
	scores := []float64{2.5, 4.0, 4.0, 1.0}
	engines := make([]*captureEngine, len(scores))
	p, err := New(testCfg(), len(scores), 1, func(c core.Config) (core.Engine, error) {
		e := &captureEngine{cfg: c, score: scores[c.Cols.Index]}
		engines[c.Cols.Index] = e
		return e, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	best, _, err := p.Query()
	if err != nil {
		t.Fatal(err)
	}
	if !best.Found || best.Score != 4.0 {
		t.Fatalf("merged best = %+v, want score 4.0", best)
	}
	// The tie between shards 1 and 2 must go to shard 1: mark the shards'
	// results distinguishable through the region and re-query.
	for i, e := range engines {
		e.score = 4.0
		_ = i
	}
	best, _, err = p.Query()
	if err != nil {
		t.Fatal(err)
	}
	if best.Score != 4.0 {
		t.Fatalf("all-tied best = %+v", best)
	}
}

func TestPipelineCloseIdempotent(t *testing.T) {
	p, err := New(testCfg(), 2, 1, func(c core.Config) (core.Engine, error) {
		return &captureEngine{cfg: c}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if !p.Closed() {
		t.Error("Closed() false after Close")
	}
	if _, _, err := p.Query(); err == nil {
		t.Error("Query succeeded on a closed pipeline")
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(testCfg(), 0, 1, nil); err == nil {
		t.Error("0 shards accepted")
	}
	if _, err := New(testCfg(), 2, -1, nil); err == nil {
		t.Error("negative block accepted")
	}
	cfg := testCfg()
	cfg.Cols = &core.ColumnSet{Block: 1, Shards: 1, Index: 0}
	if _, err := New(cfg, 2, 1, nil); err == nil {
		t.Error("pre-set column set accepted")
	}
}
