package shard

import "sync"

// Pool is a fixed set of workers with sticky routing: Submit(w, fn) always
// runs fn on worker w mod N, so work items that share a key land on the
// same goroutine in submission order — per-key mutable state needs no lock
// as long as the submitter waits at the barrier before reading it.
//
// The server's tenant plane uses one Pool to host per-query detector
// engines: each ingest batch fans out as one closure per engine, pinned to
// the engine's worker, and the event loop waits at the barrier before
// publishing the per-tenant answers. Tenancy therefore scales with cores —
// N queries share min(N, workers) goroutines — instead of spawning a
// pipeline per query.
//
// The submitter contract matches that single-writer use: Submit and Wait
// may only be called from one goroutine (Wait is a plain WaitGroup barrier
// over everything submitted since the last Wait). Closures run on pool
// goroutines and may touch shared read-only inputs plus state owned by
// their worker key.
type Pool struct {
	qs   []chan func()
	wg   sync.WaitGroup
	once sync.Once
}

// NewPool starts n workers (n < 1 is lifted to 1).
func NewPool(n int) *Pool {
	if n < 1 {
		n = 1
	}
	p := &Pool{qs: make([]chan func(), n)}
	for i := range p.qs {
		q := make(chan func(), 64)
		p.qs[i] = q
		go func() {
			for fn := range q {
				p.run(fn)
			}
		}()
	}
	return p
}

// run executes one closure with a panic backstop: a panicking work item
// must not kill its worker — that would wedge every later Submit to the
// same key behind a dead channel. Callers that need the panic as a value
// recover it themselves (the server's engine apply does); this recover only
// keeps the worker alive.
func (p *Pool) run(fn func()) {
	defer func() {
		recover()
		p.wg.Done()
	}()
	fn()
}

// Size returns the worker count.
func (p *Pool) Size() int { return len(p.qs) }

// Submit enqueues fn on worker w mod Size. It may block when that worker's
// queue is full — backpressure the barrier submitter absorbs anyway.
func (p *Pool) Submit(w int, fn func()) {
	p.wg.Add(1)
	p.qs[w%len(p.qs)] <- fn
}

// Wait blocks until every closure submitted since the last Wait has
// finished.
func (p *Pool) Wait() { p.wg.Wait() }

// Close stops the workers after their queues drain. Submit after Close
// panics; Wait remains safe.
func (p *Pool) Close() {
	p.once.Do(func() {
		for _, q := range p.qs {
			close(q)
		}
	})
}
