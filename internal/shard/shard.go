// Package shard implements the sharded, concurrent detection pipeline: the
// plane is partitioned into query-width column blocks striped round-robin
// over K shards, each shard runs its own detection engine on a dedicated
// goroutine fed by a buffered event channel, and a merger combines the
// per-shard answers into the global bursty region.
//
// # Ownership and the halo invariant
//
// Every candidate bursty point p belongs to the query-width column
// m = floor(p.X / Width); column blocks of Block consecutive columns are
// striped over the shards, so each candidate point is owned by exactly one
// shard (core.ColumnSet). A region anchored at a point in column m spans the
// x-interval (p.X - Width, p.X], which is contained in the columns m-1 and
// m. The router therefore replicates every window event to the owners of the
// columns its coverage rectangle touches — a halo of exactly one query width
// to the left of each owned block — so the owning shard of any candidate
// point holds *all* objects of the region anchored there and computes its
// burst score over complete data, bit-identically to a single engine. A
// non-owning shard never reports a candidate it does not own (the engines
// apply the ColumnSet filter), so partial halo data can never surface as an
// inflated score.
//
// Events are routed by the same floor(x/Width) arithmetic the engines' grids
// use (grid.CoverCells), so the router and the engines always agree on
// ownership, including at column boundaries and for negative coordinates.
//
// # Concurrency model
//
// The pipeline is an SPMD fan-out with a barrier merger:
//
//	caller ──Route──▶ per-shard event buffers ──chan──▶ K engine goroutines
//	caller ◀─merged Result── barrier Query ◀─reply chan── (Best per shard)
//
// Route buffers events per shard and ships them in batches to amortise
// channel synchronisation; by default the batch size adapts to each shard's
// backlog (MinFlush while the shard's channel is empty, doubling with the
// channel depth up to MaxFlush), and batch slices are recycled through a
// sync.Pool — workers hand them back after applying them, so the steady
// state routes without allocating. Query flushes every buffer, sends a barrier
// message down each channel and merges the K answers by maximum score, ties
// broken deterministically by the lowest shard index. The Pipeline itself is
// not safe for concurrent use by multiple callers: one goroutine routes and
// queries, the parallelism lives inside.
package shard

import (
	"errors"
	"fmt"
	"math"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"surge/internal/core"
	"surge/internal/obs"
)

// DefaultBlockCols is the default number of query-width columns per
// ownership block. Small blocks spread hotspots over more shards; large
// blocks shrink the halo fraction (only objects within one query width of a
// block edge are routed to two shards).
const DefaultBlockCols = 4

const (
	// MinFlush is the router's flush threshold while a shard's channel is
	// empty: the shard is keeping up, so small batches minimise the time an
	// event sits in the router before the engine sees it.
	MinFlush = 64
	// MaxFlush caps the adaptive flush threshold and sizes the pooled batch
	// slices. Under backlog the router ships up to this many events per
	// channel synchronisation, amortising the send exactly when the channel
	// is most contended.
	MaxFlush = 1024
	// chanDepth is the per-shard channel capacity in batches.
	chanDepth = 8
)

// Params tunes the pipeline beyond the spatial partitioning itself.
type Params struct {
	// FlushEvents fixes the router's per-shard flush size. 0 selects the
	// backlog-adaptive policy: the threshold starts at MinFlush and doubles
	// with the shard's channel depth up to MaxFlush, so idle shards get
	// low-latency small batches and backlogged shards get large ones.
	FlushEvents int
}

// EngineFactory builds the detection engine for one shard. The passed config
// carries the shard's ColumnSet ownership filter; the factory must hand it
// through to the engine unchanged.
type EngineFactory func(cfg core.Config) (core.Engine, error)

type statser interface{ Stats() core.Stats }

// batch is one unit of work shipped to a shard: a slice of events, an
// optional top-k chain operation, and, when q is non-nil, a barrier request
// answered with the shard's current best result after the events are
// applied.
type batch struct {
	evs []core.Event
	op  *tkOp
	q   chan<- reply
}

type reply struct {
	idx   int
	best  core.Result
	stats core.Stats
}

// tkSlot is one attached top-k engine on a worker, identified by its
// chain id.
type tkSlot struct {
	id  int
	eng core.TopKShard
}

type worker struct {
	idx  int
	eng  core.Engine // single-region engine; nil on a top-k-only pipeline
	tks  []tkSlot    // attached top-k chain engines, fed every event
	ch   chan batch
	done chan struct{}
}

// chainEngine returns the worker's engine for the given chain id.
func (w *worker) chainEngine(id int) core.TopKShard {
	for _, t := range w.tks {
		if t.id == id {
			return t.eng
		}
	}
	return nil
}

// Pipeline fans window events out to per-shard engines and merges their
// answers. Use New, Route, Query and Close; see the package comment for the
// concurrency contract.
type Pipeline struct {
	cfg      core.Config
	block    int
	cs       core.ColumnSet // Index unused; ShardOf routes
	flush    int            // fixed flush size; 0 = backlog-adaptive
	batchCap int            // capacity of the pooled batch slices
	workers  []*worker
	pending  [][]core.Event
	pool     sync.Pool
	replyc   chan reply
	results  []core.Result
	stats    []core.Stats
	closed   bool

	routeSeq  uint64   // bumped per routed event; top-k chains detect staleness
	shardSeq  []uint64 // per-shard event counters; chains skip re-solving clean shards
	nextChain int      // next top-k chain id
	tgt       [3]int   // Route/seed target scratch (single-caller contract)

	// Telemetry (process-wide obs.Default; recording amortised over batch
	// ship points, gated behind obs.On).
	mFlush   *obs.Histogram // events per shipped batch
	mBarrier *obs.Histogram // Query barrier wait
	mDepth   []*obs.Gauge   // per-shard channel depth at flush
	mEvents  []*obs.Counter // per-shard events shipped

	// Panic containment. A panic in engine code on a worker goroutine is
	// recovered, recorded here, and the worker turns into a zombie: it keeps
	// draining its channel and answering barriers and solves (with zero
	// results) so the coordinator never deadlocks, but stops touching its
	// engines, whose state the unwound call may have left corrupt. failed is
	// the lock-free flag the query paths consult; perr (under pmu) holds the
	// first panic, stack included.
	failed atomic.Bool
	pmu    sync.Mutex
	perr   error

	// noEngines records that the workers run no single-region engines — a
	// top-k-only pipeline (factory == nil) or one whose engines were dropped
	// by DropEngines. It is the coordinator-side mirror of the workers'
	// w.eng == nil state: Query must not read w.eng (the workers write it on
	// their own goroutines), so it consults this flag instead.
	noEngines bool
}

// New builds a pipeline of `shards` engines over the given base config with
// default tuning (backlog-adaptive flush sizing). blockCols is the ownership
// block width in query-width columns (0 selects DefaultBlockCols). The
// factory is called once per shard with a config whose Cols field identifies
// the shard's owned columns.
func New(cfg core.Config, shards, blockCols int, factory EngineFactory) (*Pipeline, error) {
	return NewWithParams(cfg, shards, blockCols, Params{}, factory)
}

// NewWithParams is New with explicit tuning parameters.
func NewWithParams(cfg core.Config, shards, blockCols int, par Params, factory EngineFactory) (*Pipeline, error) {
	if shards < 1 {
		return nil, fmt.Errorf("shard: need at least 1 shard, got %d", shards)
	}
	if blockCols == 0 {
		blockCols = DefaultBlockCols
	}
	if blockCols < 1 {
		return nil, fmt.Errorf("shard: block width must be >= 1 column, got %d", blockCols)
	}
	if cfg.Cols != nil {
		return nil, errors.New("shard: base config already carries a column set")
	}
	if par.FlushEvents < 0 {
		return nil, fmt.Errorf("shard: flush size must be >= 0, got %d", par.FlushEvents)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	batchCap := MaxFlush
	if par.FlushEvents > 0 {
		batchCap = par.FlushEvents
	}
	p := &Pipeline{
		cfg:      cfg,
		block:    blockCols,
		cs:       core.ColumnSet{Block: blockCols, Shards: shards},
		flush:    par.FlushEvents,
		batchCap: batchCap,
		workers:  make([]*worker, shards),
		pending:  make([][]core.Event, shards),
		shardSeq: make([]uint64, shards),
		replyc:   make(chan reply, shards),
		results:  make([]core.Result, shards),
		stats:    make([]core.Stats, shards),
	}
	p.pool.New = func() any {
		s := make([]core.Event, 0, batchCap)
		return &s
	}
	p.mFlush = obs.Default.Values(obs.MShardFlush, "Events per batch shipped to a shard worker.")
	p.mBarrier = obs.Default.Duration(obs.MShardBarrier, "Query barrier: flush to all shards answered.")
	p.mDepth = make([]*obs.Gauge, shards)
	p.mEvents = make([]*obs.Counter, shards)
	for i := 0; i < shards; i++ {
		label := strconv.Itoa(i)
		p.mDepth[i] = obs.Default.Gauge(obs.MShardDepth, "Per-shard channel depth (batches) observed at flush.", "shard", label)
		p.mEvents[i] = obs.Default.Counter(obs.MShardEvents, "Events shipped per shard (halo replicas included).", "shard", label)
	}
	p.noEngines = factory == nil
	for i := 0; i < shards; i++ {
		var eng core.Engine
		if factory != nil {
			var err error
			eng, err = factory(p.shardConfig(i))
			if err != nil {
				p.stop()
				return nil, fmt.Errorf("shard %d: %w", i, err)
			}
		}
		w := &worker{idx: i, eng: eng, ch: make(chan batch, chanDepth), done: make(chan struct{})}
		p.workers[i] = w
		go p.run(w)
	}
	return p, nil
}

// shardConfig returns the base config carrying shard i's ownership filter.
func (p *Pipeline) shardConfig(i int) core.Config {
	scfg := p.cfg
	scfg.Cols = &core.ColumnSet{Block: p.block, Shards: len(p.workers), Index: i}
	return scfg
}

// run is the shard goroutine: apply event batches to every engine, execute
// top-k chain operations, answer barriers. Engine calls run behind recover
// wrappers; after the first panic the worker keeps draining — returning pool
// buffers and answering barriers and solves with zero results — so the
// coordinator's reply counts always balance and Query/Close never hang on a
// crashed shard.
func (p *Pipeline) run(w *worker) {
	defer close(w.done)
	failed := false // goroutine-owned: this worker's engines are poisoned
	for b := range w.ch {
		if !failed && len(b.evs) > 0 {
			failed = !p.applyEvents(w, b.evs)
		}
		if b.evs != nil {
			b.evs = b.evs[:0]
			p.pool.Put(&b.evs)
		}
		if b.op != nil {
			if failed {
				// Zombie drain: the only op with a waiting receiver is
				// tkSolve; everything else mutates engine state we must no
				// longer touch.
				if b.op.kind == tkSolve {
					b.op.resc <- tkReply{idx: w.idx}
				}
			} else {
				failed = !p.runOp(w, b.op)
			}
		}
		if b.q != nil {
			r, ok := p.bestReply(w, failed)
			if !ok {
				failed = true
			}
			b.q <- r
		}
	}
}

// applyEvents feeds one batch into the worker's engines. A panic in engine
// code is recovered and recorded as the pipeline error; ok reports whether
// the worker survived.
func (p *Pipeline) applyEvents(w *worker, evs []core.Event) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			p.fail(w.idx, r)
		}
	}()
	for _, ev := range evs {
		if w.eng != nil {
			w.eng.Process(ev)
		}
		for _, t := range w.tks {
			t.eng.Process(ev)
		}
	}
	return true
}

// runOp executes one top-k chain operation on the worker's goroutine. On a
// panic the recorded obligation still holds: a tkSolve that did not get to
// its send replies with a zero result so the coordinator's receive loop
// completes. ok reports whether the worker survived.
func (p *Pipeline) runOp(w *worker, op *tkOp) (ok bool) {
	replied := false
	defer func() {
		if r := recover(); r != nil {
			p.fail(w.idx, r)
			if op.kind == tkSolve && !replied {
				op.resc <- tkReply{idx: w.idx}
			}
		}
	}()
	switch op.kind {
	case tkAttach:
		w.tks = append(w.tks, tkSlot{id: op.id, eng: op.eng})
		for _, ev := range op.seed {
			op.eng.Process(ev)
		}
	case tkDetach:
		for j, t := range w.tks {
			if t.id == op.id {
				w.tks = append(w.tks[:j], w.tks[j+1:]...)
				break
			}
		}
	case tkSolve:
		r := tkReply{idx: w.idx}
		if eng := w.chainEngine(op.id); eng != nil {
			r.res = eng.ProblemBest(op.i)
			if s, ok := eng.(statser); ok {
				r.stats = s.Stats()
			}
		}
		replied = true
		op.resc <- r
	case tkApply:
		if eng := w.chainEngine(op.id); eng != nil {
			eng.ApplyRank(op.i, op.old, op.sel)
		}
	case tkDropEng:
		w.eng = nil
	}
	return true
}

// bestReply computes the worker's barrier answer. A failed (or engine-less)
// worker answers with a zero reply so the barrier still balances; a panic in
// Best/Stats fails the worker like any other engine panic.
func (p *Pipeline) bestReply(w *worker, failed bool) (r reply, ok bool) {
	r.idx = w.idx
	if failed || w.eng == nil {
		return r, !failed
	}
	defer func() {
		if rec := recover(); rec != nil {
			p.fail(w.idx, rec)
			r = reply{idx: w.idx}
			ok = false
		}
	}()
	r.best = w.eng.Best()
	if s, ok := w.eng.(statser); ok {
		r.stats = s.Stats()
	}
	return r, true
}

// fail records the first engine panic as the pipeline error, stack included,
// so the crash site survives into Detector.Err and the serving layer's
// health endpoint instead of tearing the process down.
func (p *Pipeline) fail(idx int, r any) {
	p.pmu.Lock()
	if p.perr == nil {
		p.perr = fmt.Errorf("shard %d: engine panicked: %v\n%s", idx, r, debug.Stack())
	}
	p.pmu.Unlock()
	p.failed.Store(true)
}

// err returns the recorded pipeline panic error, nil while healthy.
func (p *Pipeline) err() error {
	if !p.failed.Load() {
		return nil
	}
	p.pmu.Lock()
	defer p.pmu.Unlock()
	return p.perr
}

// Shards returns the number of engine shards.
func (p *Pipeline) Shards() int { return len(p.workers) }

// BlockCols returns the ownership block width in query-width columns.
func (p *Pipeline) BlockCols() int { return p.block }

// Closed reports whether Close has been called.
func (p *Pipeline) Closed() bool { return p.closed }

// Route buffers one window event for every shard whose owned columns the
// event's coverage rectangle touches (one shard in the interior of a block,
// two across a block boundary — the halo replication). Events for objects
// outside the preferred area are dropped. Route must not be called after
// Close.
func (p *Pipeline) Route(ev core.Event) {
	if p.closed {
		// Degraded mode (see surge.Detector.Err): the workers are gone, so
		// buffering more events could only grow until a flush tried to send
		// on a closed channel. Drop the event; the next Query reports the
		// closed-pipeline error.
		return
	}
	if !p.cfg.InArea(ev.Obj) {
		return
	}
	p.routeSeq++
	for _, s := range p.targets(ev) {
		p.enqueue(s, ev)
	}
}

// targets returns the distinct shards the event is replicated to, in the
// pipeline's routing scratch (valid until the next call). The coverage
// rectangle (x, x+Width] touches columns i0..i1 under the identical floor
// arithmetic of grid.CoverCells; a candidate in column i0+1 can also depend
// on this object through a grid shifted by less than one cell (gapsurge), so
// the routed span always includes it. The span covers at most three columns;
// the owners are deduped so an event reaches each shard once (with Block ==
// 1 the owner pattern can be A,B,A, so positional dedupe is not enough).
func (p *Pipeline) targets(ev core.Event) []int {
	x := ev.Obj.X
	i0 := int(math.Floor(x / p.cfg.Width))
	i1 := int(math.Floor((x + p.cfg.Width) / p.cfg.Width))
	if i1 < i0+1 {
		i1 = i0 + 1
	}
	n := 0
	for m := i0; m <= i1; m++ {
		s := p.cs.ShardOf(m)
		dup := false
		for j := 0; j < n; j++ {
			if p.tgt[j] == s {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		p.tgt[n] = s
		n++
	}
	return p.tgt[:n]
}

func (p *Pipeline) enqueue(s int, ev core.Event) {
	p.shardSeq[s]++
	buf := p.pending[s]
	if buf == nil {
		buf = (*p.pool.Get().(*[]core.Event))[:0]
	}
	buf = append(buf, ev)
	if len(buf) >= p.flushTarget(s) {
		p.noteShip(s, len(buf))
		p.workers[s].ch <- batch{evs: buf}
		buf = nil
	}
	p.pending[s] = buf
}

// noteShip records one batch ship to shard s: the batch size, the shard's
// cumulative event count and its channel depth at the moment of the ship.
// Amortised over whole batches, so the per-event routing cost is untouched.
func (p *Pipeline) noteShip(s, events int) {
	if !obs.On() {
		return
	}
	p.mFlush.Record(uint64(events))
	p.mEvents[s].Add(uint64(events))
	p.mDepth[s].Set(float64(len(p.workers[s].ch)))
}

// flushTarget returns the buffered-event count at which the router ships a
// batch to shard s. A fixed Params.FlushEvents wins; otherwise the target
// adapts to the shard's observed backlog — the channel depth read here is a
// heuristic (the worker drains concurrently), so the target only steers
// batch sizing and never affects which events a shard sees or their order.
func (p *Pipeline) flushTarget(s int) int {
	if p.flush > 0 {
		return p.flush
	}
	t := MinFlush << uint(len(p.workers[s].ch))
	if t > MaxFlush || t <= 0 {
		return MaxFlush
	}
	return t
}

// Query flushes the event buffers, waits for every shard to drain, and
// returns the merged bursty region together with the summed engine
// statistics. Equal-score shard answers are merged by core.CompareTopK — the
// canonical cross-family selection order the engines themselves use — so the
// merged answer is bit-identical to a single engine's no matter how cells
// are partitioned. It is the pipeline's only synchronisation point: after
// Query returns, every routed event has been applied.
func (p *Pipeline) Query() (core.Result, core.Stats, error) {
	if p.closed {
		return core.Result{}, core.Stats{}, errors.New("shard: pipeline is closed")
	}
	if p.noEngines {
		return core.Result{}, core.Stats{}, errors.New("shard: pipeline has no single-region engines")
	}
	if err := p.err(); err != nil {
		return core.Result{}, core.Stats{}, err
	}
	rec := obs.On()
	var t0 time.Time
	if rec {
		t0 = time.Now()
	}
	for i, w := range p.workers {
		if n := len(p.pending[i]); n > 0 {
			p.noteShip(i, n)
		}
		w.ch <- batch{evs: p.pending[i], q: p.replyc}
		p.pending[i] = nil
	}
	for range p.workers {
		r := <-p.replyc
		p.results[r.idx] = r.best
		p.stats[r.idx] = r.stats
	}
	// Every worker answered (zombies with zero replies), so a panic during
	// this very barrier is visible now: the reply send happens after the
	// worker records the failure.
	if err := p.err(); err != nil {
		return core.Result{}, core.Stats{}, err
	}
	if rec {
		p.mBarrier.Observe(time.Since(t0))
	}
	var best core.Result
	for _, r := range p.results {
		if r.Found && (!best.Found || core.CompareTopK(r, best) < 0) {
			best = r
		}
	}
	var st core.Stats
	for _, s := range p.stats {
		st.Events += s.Events
		st.Searches += s.Searches
		st.SearchEvents += s.SearchEvents
		st.SweepEntries += s.SweepEntries
		st.CellsTouched += s.CellsTouched
	}
	return best, st, nil
}

// DropEngines permanently retires the single-region engines: each worker
// drops its engine on its own goroutine (freeing the engine's state for
// collection) and stops feeding routed events to it, while attached top-k
// chains keep running. Query fails afterwards — callers switch to serving
// from an attached chain before dropping. DropEngines is idempotent and a
// no-op on a top-k-only or closed pipeline.
func (p *Pipeline) DropEngines() {
	if p.closed || p.noEngines {
		return
	}
	p.noEngines = true
	for _, w := range p.workers {
		w.ch <- batch{op: &tkOp{kind: tkDropEng}}
	}
}

// Close stops the shard goroutines and waits for them to exit. Buffered
// events that were never followed by a Query are discarded. Close is
// idempotent; Route and Query must not be used afterwards.
func (p *Pipeline) Close() error {
	if p.closed {
		return nil
	}
	p.closed = true
	p.stop()
	return nil
}

func (p *Pipeline) stop() {
	for _, w := range p.workers {
		if w != nil {
			close(w.ch)
		}
	}
	for _, w := range p.workers {
		if w != nil {
			<-w.done
		}
	}
}
