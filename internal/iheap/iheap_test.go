package iheap

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestEmpty(t *testing.T) {
	h := New[string]()
	if h.Len() != 0 {
		t.Fatal("new heap must be empty")
	}
	if _, _, ok := h.Max(); ok {
		t.Fatal("Max on empty heap must report !ok")
	}
	if _, _, ok := h.PopMax(); ok {
		t.Fatal("PopMax on empty heap must report !ok")
	}
	h.Remove("missing") // must not panic
}

func TestBasicOrdering(t *testing.T) {
	h := New[int]()
	h.Set(1, 5)
	h.Set(2, 9)
	h.Set(3, 1)
	if k, p, _ := h.Max(); k != 2 || p != 9 {
		t.Fatalf("max = %v/%v, want 2/9", k, p)
	}
	h.Set(3, 100) // increase-key
	if k, _, _ := h.Max(); k != 3 {
		t.Fatalf("max = %v after increase, want 3", k)
	}
	h.Set(3, 0) // decrease-key
	if k, _, _ := h.Max(); k != 2 {
		t.Fatalf("max = %v after decrease, want 2", k)
	}
	h.Remove(2)
	if k, _, _ := h.Max(); k != 1 {
		t.Fatalf("max = %v after removal, want 1", k)
	}
}

func TestGet(t *testing.T) {
	h := New[int]()
	h.Set(7, 3.5)
	if p, ok := h.Get(7); !ok || p != 3.5 {
		t.Fatalf("Get = %v/%v", p, ok)
	}
	if _, ok := h.Get(8); ok {
		t.Fatal("Get of absent key must report !ok")
	}
}

// model is a trivially correct reference implementation.
type model map[int]float64

func (m model) max() (int, float64, bool) {
	best, bp, ok := 0, 0.0, false
	for k, p := range m {
		if !ok || p > bp || (p == bp && k < best) {
			best, bp, ok = k, p, true
		}
	}
	return best, bp, ok
}

// TestAgainstModel runs randomized operations against the map-based model.
func TestAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	for trial := 0; trial < 50; trial++ {
		h := New[int]()
		m := model{}
		for op := 0; op < 500; op++ {
			k := rng.IntN(40)
			switch rng.IntN(4) {
			case 0, 1: // set
				p := float64(rng.IntN(1000)) // integer priorities avoid ties ambiguity? ties allowed, compare priorities only
				h.Set(k, p)
				m[k] = p
			case 2: // remove
				h.Remove(k)
				delete(m, k)
			case 3: // pop
				if gk, gp, ok := h.PopMax(); ok {
					if mp, ok2 := m[gk]; !ok2 || mp != gp {
						t.Fatalf("popped %v/%v not in model (%v/%v)", gk, gp, mp, ok2)
					}
					if _, wp, _ := m.max(); wp != gp {
						t.Fatalf("popped priority %v but model max is %v", gp, wp)
					}
					delete(m, gk)
				} else if len(m) != 0 {
					t.Fatal("heap empty but model is not")
				}
			}
			if h.Len() != len(m) {
				t.Fatalf("len mismatch: heap %d model %d", h.Len(), len(m))
			}
			if _, gp, gok := h.Max(); gok {
				if _, wp, _ := m.max(); wp != gp {
					t.Fatalf("max priority mismatch: heap %v model %v", gp, wp)
				}
			}
		}
	}
}

// TestDrainSorted pops everything and checks the priorities come out in
// non-increasing order (heap property), via testing/quick.
func TestDrainSorted(t *testing.T) {
	f := func(prios []float64) bool {
		h := New[int]()
		for i, p := range prios {
			h.Set(i, p)
		}
		last := 0.0
		first := true
		for {
			_, p, ok := h.PopMax()
			if !ok {
				break
			}
			if !first && p > last {
				return false
			}
			last, first = p, false
		}
		return h.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestSetIdempotent: setting the same priority twice must not corrupt the
// position map.
func TestSetIdempotent(t *testing.T) {
	h := New[int]()
	for i := 0; i < 20; i++ {
		h.Set(i, float64(i))
	}
	for i := 0; i < 20; i++ {
		h.Set(i, float64(i)) // no-op updates
	}
	for want := 19; want >= 0; want-- {
		k, _, ok := h.PopMax()
		if !ok || k != want {
			t.Fatalf("PopMax = %v/%v, want %d", k, ok, want)
		}
	}
}
