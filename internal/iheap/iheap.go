// Package iheap provides an indexed max-heap: a priority queue over
// comparable keys whose priorities can be updated or removed in O(log n).
// The detection engines use it to maintain cells (or rectangle nodes)
// ordered by their burst-score upper bounds.
package iheap

// Heap is an indexed max-heap. The zero value is not usable; use New.
type Heap[K comparable] struct {
	keys []K
	prio []float64
	pos  map[K]int
}

// New returns an empty heap.
func New[K comparable]() *Heap[K] {
	return &Heap[K]{pos: make(map[K]int)}
}

// Len returns the number of keys in the heap.
func (h *Heap[K]) Len() int { return len(h.keys) }

// Set inserts k with priority p, or updates k's priority if present.
func (h *Heap[K]) Set(k K, p float64) {
	if i, ok := h.pos[k]; ok {
		old := h.prio[i]
		h.prio[i] = p
		if p > old {
			h.up(i)
		} else if p < old {
			h.down(i)
		}
		return
	}
	h.keys = append(h.keys, k)
	h.prio = append(h.prio, p)
	i := len(h.keys) - 1
	h.pos[k] = i
	h.up(i)
}

// Get returns the priority of k and whether it is present.
func (h *Heap[K]) Get(k K) (float64, bool) {
	i, ok := h.pos[k]
	if !ok {
		return 0, false
	}
	return h.prio[i], true
}

// Remove deletes k from the heap if present.
func (h *Heap[K]) Remove(k K) {
	i, ok := h.pos[k]
	if !ok {
		return
	}
	last := len(h.keys) - 1
	h.swap(i, last)
	h.keys = h.keys[:last]
	h.prio = h.prio[:last]
	delete(h.pos, k)
	if i < last {
		h.up(i)
		h.down(i)
	}
}

// Max returns the key with the highest priority without removing it.
func (h *Heap[K]) Max() (K, float64, bool) {
	if len(h.keys) == 0 {
		var zero K
		return zero, 0, false
	}
	return h.keys[0], h.prio[0], true
}

// PopMax removes and returns the key with the highest priority.
func (h *Heap[K]) PopMax() (K, float64, bool) {
	k, p, ok := h.Max()
	if ok {
		h.Remove(k)
	}
	return k, p, ok
}

func (h *Heap[K]) swap(i, j int) {
	if i == j {
		return
	}
	h.keys[i], h.keys[j] = h.keys[j], h.keys[i]
	h.prio[i], h.prio[j] = h.prio[j], h.prio[i]
	h.pos[h.keys[i]] = i
	h.pos[h.keys[j]] = j
}

// up and down sift with a hole instead of pairwise swaps: the moving
// element is held aside, displaced elements shift one level, and the held
// element is written once at its final slot. The resulting layout is
// identical to swap-based sifting, but the position map — the dominant cost
// of every heap operation — is written once per shifted level instead of
// twice, and not at all when the element does not move.

func (h *Heap[K]) up(i int) {
	j := i
	k, p := h.keys[i], h.prio[i]
	for j > 0 {
		parent := (j - 1) / 2
		if h.prio[parent] >= p {
			break
		}
		h.keys[j], h.prio[j] = h.keys[parent], h.prio[parent]
		h.pos[h.keys[j]] = j
		j = parent
	}
	if j != i {
		h.keys[j], h.prio[j] = k, p
		h.pos[k] = j
	}
}

func (h *Heap[K]) down(i int) {
	n := len(h.keys)
	j := i
	k, p := h.keys[i], h.prio[i]
	for {
		l, r := 2*j+1, 2*j+2
		best := -1
		bp := p
		if l < n && h.prio[l] > bp {
			best, bp = l, h.prio[l]
		}
		if r < n && h.prio[r] > bp {
			best = r
		}
		if best < 0 {
			break
		}
		h.keys[j], h.prio[j] = h.keys[best], h.prio[best]
		h.pos[h.keys[j]] = j
		j = best
	}
	if j != i {
		h.keys[j], h.prio[j] = k, p
		h.pos[k] = j
	}
}
