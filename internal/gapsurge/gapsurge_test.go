package gapsurge_test

import (
	"math"
	"math/rand/v2"
	"testing"

	"surge/internal/core"
	"surge/internal/gapsurge"
	"surge/internal/geom"
	"surge/internal/topk"
	"surge/internal/window"
)

func almost(a, b float64) bool {
	d := math.Abs(a - b)
	m := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return d <= 1e-9*m
}

func randomStream(seed uint64, n int, span, wc, wp float64, liveTarget int) []core.Object {
	rng := rand.New(rand.NewPCG(seed, seed*0x9e3779b9+1))
	meanGap := (wc + wp) / float64(liveTarget)
	objs := make([]core.Object, n)
	t := 0.0
	for i := range objs {
		t += rng.ExpFloat64() * meanGap
		objs[i] = core.Object{
			X:      rng.Float64() * span,
			Y:      rng.Float64() * span,
			Weight: 1 + rng.Float64()*99,
			T:      t,
		}
	}
	return objs
}

func drive(t *testing.T, wc, wp float64, objs []core.Object, step func(core.Event)) {
	t.Helper()
	win, err := window.New(wc, wp)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range objs {
		if _, err := win.Push(o, step); err != nil {
			t.Fatal(err)
		}
	}
	win.Drain(step)
}

// TestApproximationGuarantee is Theorem 3/4 as an executable property: after
// every event, S(GAPS) and S(MGAPS) must be at least (1-alpha)/4 of the
// oracle optimum.
func TestApproximationGuarantee(t *testing.T) {
	for _, alpha := range []float64{0, 0.3, 0.7, 0.9} {
		cfg := core.Config{Width: 1, Height: 1, WC: 50, WP: 50, Alpha: alpha}
		gaps, _ := gapsurge.New(cfg, false)
		mgaps, _ := gapsurge.New(cfg, true)
		oracle, _ := topk.NewOracle(cfg)
		ratio := (1 - alpha) / 4
		step := 0
		objs := randomStream(uint64(1000*alpha+3), 800, 7, cfg.WC, cfg.WP, 110)
		drive(t, cfg.WC, cfg.WP, objs, func(ev core.Event) {
			gaps.Process(ev)
			mgaps.Process(ev)
			oracle.Process(ev)
			opt := oracle.Best()
			if !opt.Found {
				step++
				return
			}
			g := gaps.Best()
			m := mgaps.Best()
			if g.Score < ratio*opt.Score-1e-9 {
				t.Fatalf("event %d: GAPS %v below guarantee %v (opt %v, alpha %v)",
					step, g.Score, ratio*opt.Score, opt.Score, alpha)
			}
			if m.Score < ratio*opt.Score-1e-9 {
				t.Fatalf("event %d: MGAPS %v below guarantee %v", step, m.Score, ratio*opt.Score)
			}
			// MGAPS dominates GAPS (its grid 1 is the GAPS grid) and never
			// beats the optimum.
			if m.Score < g.Score-1e-9 {
				t.Fatalf("event %d: MGAPS %v below GAPS %v", step, m.Score, g.Score)
			}
			if g.Score > opt.Score+1e-9 || m.Score > opt.Score+1e-9 {
				t.Fatalf("event %d: approximation above optimum (g=%v m=%v opt=%v)",
					step, g.Score, m.Score, opt.Score)
			}
			step++
		})
	}
}

// TestCellScoreIsTrueRegionScore: the reported cell's score must equal the
// true burst score of the cell region over the live objects.
func TestCellScoreIsTrueRegionScore(t *testing.T) {
	cfg := core.Config{Width: 1.2, Height: 0.9, WC: 40, WP: 20, Alpha: 0.45}
	gaps, _ := gapsurge.New(cfg, false)
	mgaps, _ := gapsurge.New(cfg, true)
	oracle, _ := topk.NewOracle(cfg) // reuse its live-set bookkeeping
	objs := randomStream(17, 600, 6, cfg.WC, cfg.WP, 90)
	step := 0
	drive(t, cfg.WC, cfg.WP, objs, func(ev core.Event) {
		gaps.Process(ev)
		mgaps.Process(ev)
		oracle.Process(ev)
		for _, res := range []core.Result{gaps.Best(), mgaps.Best()} {
			if !res.Found {
				continue
			}
			fc, fp := oracle.RegionScore(res.Region)
			if !almost(cfg.Score(fc, fp), res.Score) {
				t.Fatalf("event %d: cell %+v reports %v but true score is %v",
					step, res.Region, res.Score, cfg.Score(fc, fp))
			}
		}
		step++
	})
}

// TestLemma7Tightness reproduces the paper's Figure 11: four unit-weight
// current objects at the centre corners of four cells, and four past objects
// placed so each cell's past score equals its current score. The optimal
// region covering all four currents scores 4 while every cell scores 1-alpha
// — the (1-alpha)/4 bound is tight.
func TestLemma7Tightness(t *testing.T) {
	alpha := 0.5
	cfg := core.Config{Width: 2, Height: 2, WC: 1, WP: 1, Alpha: alpha}
	gaps, _ := gapsurge.New(cfg, false)
	oracle, _ := topk.NewOracle(cfg)
	eps := 0.25
	// Cell (0,0) spans [0,2)x[0,2); the four cells meet at (2,2).
	cur := [][2]float64{{2 - eps, 2 - eps}, {2 + eps, 2 - eps}, {2 - eps, 2 + eps}, {2 + eps, 2 + eps}}
	// One past object per cell, far from the centre so the optimal region
	// (which hugs the centre) avoids them.
	past := [][2]float64{{0.1, 0.1}, {3.9, 0.1}, {0.1, 3.9}, {3.9, 3.9}}
	var id uint64
	emit := func(kind core.EventKind, x, y float64) core.Event {
		id++
		return core.Event{Kind: kind, Obj: core.Object{ID: id, X: x, Y: y, Weight: 1, T: 0}}
	}
	// Feed events directly: the past objects are already grown, the current
	// ones are new.
	for _, p := range past {
		ev := emit(core.New, p[0], p[1])
		gaps.Process(ev)
		oracle.Process(ev)
		ev.Kind = core.Grown
		gaps.Process(ev)
		oracle.Process(ev)
	}
	for _, c := range cur {
		ev := emit(core.New, c[0], c[1])
		gaps.Process(ev)
		oracle.Process(ev)
	}
	opt := oracle.Best()
	if !almost(opt.Score, 4) {
		t.Fatalf("optimal score = %v, want 4", opt.Score)
	}
	got := gaps.Best()
	if !almost(got.Score, 1-alpha) {
		t.Fatalf("GAPS score = %v, want %v (tight example)", got.Score, 1-alpha)
	}
	if r := got.Score / opt.Score; !almost(r, (1-alpha)/4) {
		t.Fatalf("ratio = %v, want exactly (1-alpha)/4 = %v", r, (1-alpha)/4)
	}
}

func TestEmptyEngines(t *testing.T) {
	cfg := core.Config{Width: 1, Height: 1, WC: 1, WP: 1, Alpha: 0.5}
	for _, multi := range []bool{false, true} {
		e, err := gapsurge.New(cfg, multi)
		if err != nil {
			t.Fatal(err)
		}
		if res := e.Best(); res.Found {
			t.Fatalf("multi=%v: empty engine found %+v", multi, res)
		}
		for i, r := range mustK(t, cfg, multi, 3) {
			if r.Found {
				t.Fatalf("multi=%v: empty top-k slot %d found", multi, i)
			}
		}
	}
}

func mustK(t *testing.T, cfg core.Config, multi bool, k int) []core.Result {
	t.Helper()
	e, err := gapsurge.NewTopK(cfg, multi, k)
	if err != nil {
		t.Fatal(err)
	}
	return e.BestK()
}

// TestTopKProperties: ranks are sorted by score, regions are pairwise
// non-overlapping, and each reported score is the true score of its region.
func TestTopKProperties(t *testing.T) {
	for _, multi := range []bool{false, true} {
		cfg := core.Config{Width: 1, Height: 1, WC: 50, WP: 50, Alpha: 0.5}
		k := 4
		eng, _ := gapsurge.NewTopK(cfg, multi, k)
		oracle, _ := topk.NewOracle(cfg)
		objs := randomStream(23, 700, 6, cfg.WC, cfg.WP, 120)
		step := 0
		drive(t, cfg.WC, cfg.WP, objs, func(ev core.Event) {
			eng.Process(ev)
			oracle.Process(ev)
			res := eng.BestK()
			if len(res) != k {
				t.Fatalf("BestK returned %d slots, want %d", len(res), k)
			}
			for i := 1; i < len(res); i++ {
				if res[i].Found && !res[i-1].Found {
					t.Fatalf("event %d: found slot %d after empty slot", step, i)
				}
				if res[i].Found && res[i].Score > res[i-1].Score+1e-9 {
					t.Fatalf("event %d: ranks out of order: %v > %v", step, res[i].Score, res[i-1].Score)
				}
			}
			for i := 0; i < len(res); i++ {
				if !res[i].Found {
					continue
				}
				fc, fp := oracle.RegionScore(res[i].Region)
				if !almost(cfg.Score(fc, fp), res[i].Score) {
					t.Fatalf("event %d slot %d: reported %v true %v", step, i, res[i].Score, cfg.Score(fc, fp))
				}
				for j := 0; j < i; j++ {
					if res[j].Found && res[i].Region.Overlaps(res[j].Region) {
						t.Fatalf("event %d: regions %d and %d overlap", step, i, j)
					}
				}
			}
			step++
		})
	}
}

// TestTopKAgainstBruteForce: for the single-grid variant, the k reported
// cells must be the k best cells of a brute-force recount.
func TestTopKAgainstBruteForce(t *testing.T) {
	cfg := core.Config{Width: 1, Height: 1, WC: 30, WP: 30, Alpha: 0.6}
	k := 3
	eng, _ := gapsurge.NewTopK(cfg, false, k)

	type lobj struct {
		x, y, w float64
		past    bool
	}
	live := map[uint64]*lobj{}
	objs := randomStream(41, 500, 5, cfg.WC, cfg.WP, 80)
	step := 0
	drive(t, cfg.WC, cfg.WP, objs, func(ev core.Event) {
		eng.Process(ev)
		switch ev.Kind {
		case core.New:
			live[ev.Obj.ID] = &lobj{x: ev.Obj.X, y: ev.Obj.Y, w: ev.Obj.Weight}
		case core.Grown:
			live[ev.Obj.ID].past = true
		case core.Expired:
			delete(live, ev.Obj.ID)
		}
		if step%37 == 0 { // brute force is O(n log n); sample the stream
			type cellAgg struct{ fc, fp float64 }
			agg := map[[2]int]*cellAgg{}
			for _, o := range live {
				key := [2]int{int(math.Floor(o.x / cfg.Width)), int(math.Floor(o.y / cfg.Height))}
				a := agg[key]
				if a == nil {
					a = &cellAgg{}
					agg[key] = a
				}
				if o.past {
					a.fp += o.w / cfg.WP
				} else {
					a.fc += o.w / cfg.WC
				}
			}
			var scores []float64
			for _, a := range agg {
				if s := cfg.Score(a.fc, a.fp); s > 0 {
					scores = append(scores, s)
				}
			}
			// Descending sort.
			for i := range scores {
				for j := i + 1; j < len(scores); j++ {
					if scores[j] > scores[i] {
						scores[i], scores[j] = scores[j], scores[i]
					}
				}
			}
			res := eng.BestK()
			for i := 0; i < k; i++ {
				want := 0.0
				if i < len(scores) {
					want = scores[i]
				}
				got := 0.0
				if res[i].Found {
					got = res[i].Score
				}
				if !almost(got, want) {
					t.Fatalf("event %d rank %d: got %v want %v", step, i, got, want)
				}
			}
		}
		step++
	})
}

// TestGAPSWorstCasePlacement: an optimal region straddling four cells is
// found by one of MGAPS's shifted grids at full score when the objects sit
// within a half-cell of each other.
func TestMGAPSShiftedGridWins(t *testing.T) {
	cfg := core.Config{Width: 2, Height: 2, WC: 1, WP: 1, Alpha: 0.5}
	gaps, _ := gapsurge.New(cfg, false)
	mgaps, _ := gapsurge.New(cfg, true)
	// Cluster tightly around the four-cell corner (2,2): grid 4 (shifted by
	// half in both axes) has a cell centred there.
	pts := [][2]float64{{1.8, 1.8}, {2.2, 1.8}, {1.8, 2.2}, {2.2, 2.2}}
	var id uint64
	for _, p := range pts {
		id++
		ev := core.Event{Kind: core.New, Obj: core.Object{ID: id, X: p[0], Y: p[1], Weight: 1, T: 0}}
		gaps.Process(ev)
		mgaps.Process(ev)
	}
	g, m := gaps.Best(), mgaps.Best()
	if !almost(g.Score, 1) {
		t.Fatalf("GAPS = %v, want 1 (each aligned cell holds one object)", g.Score)
	}
	if !almost(m.Score, 4) {
		t.Fatalf("MGAPS = %v, want 4 (shifted grid captures the cluster)", m.Score)
	}
	if !m.Region.ContainsCO(geom.Point{X: 2, Y: 2}) {
		t.Fatalf("MGAPS region %+v should contain the cluster centre", m.Region)
	}
}

func TestStatsCount(t *testing.T) {
	cfg := core.Config{Width: 1, Height: 1, WC: 10, WP: 10, Alpha: 0.5}
	e, _ := gapsurge.New(cfg, false)
	objs := randomStream(3, 200, 4, cfg.WC, cfg.WP, 40)
	n := 0
	drive(t, cfg.WC, cfg.WP, objs, func(ev core.Event) { e.Process(ev); n++ })
	if got := e.Stats().Events; got != uint64(n) {
		t.Fatalf("events = %d, want %d", got, n)
	}
}
