// Package gapsurge implements the paper's approximate solutions:
//
//   - GAP-SURGE (Algorithm 3): a grid of query-sized cells; every cell is a
//     candidate region whose burst score is maintained incrementally under
//     window-transition events, with the cells kept in an indexed max-heap.
//     Processing an event costs O(log n); the returned region's burst score
//     is at least (1-alpha)/4 of the optimum (Theorem 3).
//   - MGAP-SURGE (Algorithm 5): runs GAP-SURGE on the four half-cell-shifted
//     grids of Section V-B and reports the best of the four candidates. The
//     worst-case ratio is unchanged (Theorem 4) but the practical quality is
//     substantially better (Tables III/IV).
//   - Their top-k extensions (Algorithms 6 and 7): top-k cells of the single
//     grid, or the top-k non-overlapping cells among the top-4k cells of each
//     of the four grids.
package gapsurge

import (
	"slices"

	"surge/internal/core"
	"surge/internal/geom"
	"surge/internal/grid"
	"surge/internal/iheap"
)

// gobj is one live object of a cell, stored in arrival order (IDs are
// assigned by the window engine in stream order); expired entries are
// tombstoned and compaction preserves the order. The ordered list exists so
// reported scores can be computed as canonical arrival-order folds — a pure
// function of the cell's content — while the O(1) incremental accumulators
// keep ordering the heap.
type gobj struct {
	id   uint64
	wt   float64
	past bool
	dead bool
}

type gcell struct {
	fc, fp float64 // incremental accumulators: heap keys, not reported values
	nc, np int
	objs   []gobj // arrival-ordered; expired entries are tombstoned
	dead   int    // tombstones in objs
}

// lookup returns the position of the live object with the given ID (objs is
// sorted by ID; see gobj).
func (c *gcell) lookup(id uint64) (int, bool) {
	lo, hi := 0, len(c.objs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if c.objs[mid].id < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(c.objs) && c.objs[lo].id == id && !c.objs[lo].dead {
		return lo, true
	}
	return 0, false
}

// remove tombstones the object at position i and compacts the backing array
// once half of it is dead, preserving arrival order.
func (c *gcell) remove(i int) {
	c.objs[i].dead = true
	c.dead++
	if c.dead > 16 && c.dead*2 >= len(c.objs) {
		kept := c.objs[:0]
		for _, g := range c.objs {
			if !g.dead {
				kept = append(kept, g)
			}
		}
		c.objs = kept
		c.dead = 0
	}
}

// fold returns the canonical arrival-order window scores of the cell.
func (c *gcell) fold(cfg core.Config) (fc, fp float64) {
	for i := range c.objs {
		g := &c.objs[i]
		if g.dead {
			continue
		}
		if g.past {
			fp += g.wt / cfg.WP
		} else {
			fc += g.wt / cfg.WC
		}
	}
	return fc, fp
}

type layer struct {
	g     grid.Grid
	cells map[grid.Cell]*gcell
	heap  *iheap.Heap[grid.Cell]
}

// Engine is a grid-based approximate SURGE detector. It is not safe for
// concurrent use.
type Engine struct {
	cfg    core.Config
	layers []layer
	k      int // number of regions reported by BestK
	stats  core.Stats

	popKeys   []grid.Cell
	popScores []float64
	merged    []core.Result
	free      []*gcell // emptied cells kept for reuse, shared across layers

	// Mask state of the cross-shard greedy chain (core.TopKShard):
	// masks[i] is the region committed for rank i+1, valid when maskOK[i].
	masks  []geom.Rect
	maskOK []bool
}

var (
	_ core.Engine     = (*Engine)(nil)
	_ core.TopKEngine = (*Engine)(nil)
	_ core.TopKShard  = (*Engine)(nil)
)

// New returns a GAP-SURGE engine (multi == false) or an MGAP-SURGE engine
// (multi == true).
func New(cfg core.Config, multi bool) (*Engine, error) {
	return NewTopK(cfg, multi, 1)
}

// NewTopK returns the top-k extension with the given k >= 1.
func NewTopK(cfg core.Config, multi bool, k int) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if k < 1 {
		k = 1
	}
	var grids []grid.Grid
	if multi {
		g4 := grid.FourGrids(cfg.Width, cfg.Height)
		grids = g4[:]
	} else {
		grids = []grid.Grid{grid.Aligned(cfg.Width, cfg.Height)}
	}
	e := &Engine{cfg: cfg, k: k}
	for _, g := range grids {
		e.layers = append(e.layers, layer{
			g:     g,
			cells: make(map[grid.Cell]*gcell),
			heap:  iheap.New[grid.Cell](),
		})
	}
	return e, nil
}

// Stats returns the instrumentation counters.
func (e *Engine) Stats() core.Stats { return e.stats }

// MultiGrid reports whether this is the multi-grid (MGAP-SURGE) variant.
func (e *Engine) MultiGrid() bool { return len(e.layers) == 4 }

// Process applies one window-transition event (Algorithm 3, lines 1-5).
func (e *Engine) Process(ev core.Event) {
	if !e.cfg.InArea(ev.Obj) {
		return
	}
	o := ev.Obj
	dc := o.Weight / e.cfg.WC
	dp := o.Weight / e.cfg.WP
	counted := false
	for li := range e.layers {
		l := &e.layers[li]
		ck := l.g.CellOf(o.X, o.Y)
		// Sharded ownership: a cell is owned by the shard owning its
		// candidate bursty point, the cell's top-right corner. Every grid
		// offset satisfies 0 <= OffX < CW, so MaxX = (I+1)*CW + OffX always
		// falls in query-width column I+1.
		if !e.cfg.OwnsCol(ck.I + 1) {
			continue
		}
		if !counted {
			counted = true
			e.stats.Events++
		}
		c := l.cells[ck]
		if c == nil {
			if ev.Kind != core.New {
				continue
			}
			// Reuse an emptied cell so churn under a moving stream does not
			// allocate; a recycled cell is zeroed, exactly a fresh one.
			if n := len(e.free); n > 0 {
				c = e.free[n-1]
				e.free = e.free[:n-1]
			} else {
				c = &gcell{}
			}
			l.cells[ck] = c
		}
		e.stats.CellsTouched++
		switch ev.Kind {
		case core.New:
			c.objs = append(c.objs, gobj{id: o.ID, wt: o.Weight})
			c.fc += dc
			c.nc++
		case core.Grown:
			i, ok := c.lookup(o.ID)
			if !ok || c.objs[i].past {
				break
			}
			c.objs[i].past = true
			c.fc -= dc
			c.nc--
			c.fp += dp
			c.np++
		case core.Expired:
			i, ok := c.lookup(o.ID)
			if !ok {
				break
			}
			if c.objs[i].past {
				c.fp -= dp
				c.np--
			} else { // expired without a Grown event (defensive)
				c.fc -= dc
				c.nc--
			}
			c.remove(i)
		}
		// Reset empty accumulators so float drift cannot build up over the
		// lifetime of a long stream.
		if c.nc == 0 {
			c.fc = 0
		}
		if c.np == 0 {
			c.fp = 0
		}
		if c.nc == 0 && c.np == 0 {
			delete(l.cells, ck)
			l.heap.Remove(ck)
			c.objs = c.objs[:0] // keep the backing array for reuse
			c.dead = 0
			c.fc, c.fp = 0, 0
			e.free = append(e.free, c)
			continue
		}
		l.heap.Set(ck, e.cfg.Score(c.fc, c.fp))
	}
}

// Best reports the cell with the maximum burst score across all grids.
func (e *Engine) Best() core.Result {
	var best core.Result
	bestKey := 0.0
	for li := range e.layers {
		l := &e.layers[li]
		ck, sc, ok := l.heap.Max()
		if !ok || sc <= 0 || (best.Found && sc <= bestKey) {
			continue
		}
		best = e.resultOf(l, ck)
		bestKey = sc
	}
	return best
}

// BestK reports the current top-k regions (Algorithm 6 for the single grid,
// Algorithm 7 for the multi-grid variant).
func (e *Engine) BestK() []core.Result {
	out := make([]core.Result, e.k)
	if !e.MultiGrid() {
		l := &e.layers[0]
		top := e.popTop(l, e.k, e.merged[:0])
		e.merged = top[:0]
		copy(out, top)
		return out
	}
	// Multi-grid: take the top-4k cells of each grid, merge, and greedily
	// keep the best non-overlapping k.
	e.merged = e.merged[:0]
	for li := range e.layers {
		e.merged = e.popTop(&e.layers[li], 4*e.k, e.merged)
	}
	slices.SortFunc(e.merged, core.CompareTopK)
	n := 0
	for _, r := range e.merged {
		if n == e.k {
			break
		}
		overlaps := false
		for i := 0; i < n; i++ {
			if out[i].Region.Overlaps(r.Region) {
				overlaps = true
				break
			}
		}
		if !overlaps {
			out[n] = r
			n++
		}
	}
	return out
}

// ProblemBest implements core.TopKShard: the engine's best owned candidate
// for chain problem i, i.e. the best cell (across the grids) that does not
// overlap a region committed for ranks < i.
//
// The single grid selects in heap-key pop order (first unmasked positive
// cell — Algorithm 6's order; a committed region overlaps at most four
// cells, so at most 4(i-1)+1 cells are popped). The multi-grid variant
// mirrors BestK's merge exactly: the top-4k cells of every grid are popped
// into one pool and the CompareTopK-least unmasked candidate wins, the same
// canonical fold-then-region order BestK's sort uses — so equal-score cells
// across (or within) grids resolve identically in both code paths.
func (e *Engine) ProblemBest(i int) core.Result {
	if !e.MultiGrid() {
		r, _ := e.popBestUnmasked(&e.layers[0], i-1)
		return r
	}
	e.merged = e.merged[:0]
	for li := range e.layers {
		e.merged = e.popTop(&e.layers[li], 4*e.k, e.merged)
	}
	var best core.Result
	for _, r := range e.merged {
		if e.maskedRegion(r.Region, i-1) {
			continue
		}
		if core.CompareTopK(r, best) < 0 {
			best = r
		}
	}
	return best
}

// maskedRegion reports whether the region overlaps one of the first nmask
// committed regions.
func (e *Engine) maskedRegion(r geom.Rect, nmask int) bool {
	for m := 0; m < nmask && m < len(e.masks); m++ {
		if e.maskOK[m] && r.Overlaps(e.masks[m]) {
			return true
		}
	}
	return false
}

// ApplyRank implements core.TopKShard: record the globally selected region
// for rank i. The grid chains have no level state to update — masking is
// purely geometric — so the old answer is not needed.
func (e *Engine) ApplyRank(i int, _, sel core.Result) {
	for len(e.masks) < i {
		e.masks = append(e.masks, geom.Rect{})
		e.maskOK = append(e.maskOK, false)
	}
	e.masks[i-1] = sel.Region
	e.maskOK[i-1] = sel.Found
}

// popBestUnmasked pops cells from the layer's heap in descending key order
// until one with a positive score does not overlap the first nmask committed
// regions, restores the heap, and reports that cell canonically.
func (e *Engine) popBestUnmasked(l *layer, nmask int) (core.Result, bool) {
	e.popKeys = e.popKeys[:0]
	e.popScores = e.popScores[:0]
	var res core.Result
	found := false
	for {
		ck, sc, ok := l.heap.PopMax()
		if !ok {
			break
		}
		e.popKeys = append(e.popKeys, ck)
		e.popScores = append(e.popScores, sc)
		if sc <= 0 {
			break
		}
		if e.maskedRegion(l.g.CellRect(ck), nmask) {
			continue
		}
		res = e.resultOf(l, ck)
		found = true
		break
	}
	for i, ck := range e.popKeys {
		l.heap.Set(ck, e.popScores[i])
	}
	return res, found
}

// popTop removes up to k positive-score cells from the layer's heap in
// descending order, restores them, and appends their results to dst.
func (e *Engine) popTop(l *layer, k int, dst []core.Result) []core.Result {
	e.popKeys = e.popKeys[:0]
	e.popScores = e.popScores[:0]
	taken := 0
	for taken < k {
		ck, sc, ok := l.heap.PopMax()
		if !ok {
			break
		}
		e.popKeys = append(e.popKeys, ck)
		e.popScores = append(e.popScores, sc)
		if sc <= 0 {
			break
		}
		dst = append(dst, e.resultOf(l, ck))
		taken++
	}
	for i, ck := range e.popKeys {
		l.heap.Set(ck, e.popScores[i])
	}
	return dst
}

// resultOf reports a cell canonically: the returned scores are the
// arrival-order folds of the cell's live objects, independent of the
// accumulator history, so a continuously maintained engine reports bitwise
// the same values as one rebuilt from a checkpoint of the same content.
// (The heap keys remain the incremental accumulators; they only order the
// candidate selection, where equal content differs by at most rounding.)
func (e *Engine) resultOf(l *layer, ck grid.Cell) core.Result {
	c := l.cells[ck]
	r := l.g.CellRect(ck)
	fc, fp := c.fold(e.cfg)
	return core.Result{
		Point:  geom.Point{X: r.MaxX, Y: r.MaxY},
		Region: r,
		Score:  e.cfg.Score(fc, fp),
		FC:     fc,
		FP:     fp,
		Found:  true,
	}
}
