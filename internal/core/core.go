// Package core defines the shared model of the SURGE problem: spatial
// objects, the sliding-window event vocabulary, the query configuration and
// the burst-score function (Definition 1 of the paper), together with the
// SURGE-to-cSPOT reduction helpers (Section IV-A).
//
// All detection engines consume the same stream of Events and report
// Results, so the engines are interchangeable behind the Engine interface.
package core

import (
	"errors"
	"fmt"
	"math"

	"surge/internal/geom"
)

// Object is a spatial object o = <w, rho, tc>: a weighted point created at
// time T. Times are float64 in any consistent unit (the benchmarks use
// seconds). ID is assigned by the window engine when the object enters the
// stream and is used by the engines to track the object across its
// New -> Grown -> Expired lifecycle.
type Object struct {
	ID     uint64
	X, Y   float64
	Weight float64
	T      float64
}

// Point returns the object's location.
func (o Object) Point() geom.Point { return geom.Point{X: o.X, Y: o.Y} }

// Validate rejects objects the engines cannot index safely: non-finite
// coordinates or times, and negative or non-finite weights (the burst score
// and every upper-bound argument assume non-negative weights).
func (o Object) Validate() error {
	if math.IsNaN(o.X) || math.IsInf(o.X, 0) || math.IsNaN(o.Y) || math.IsInf(o.Y, 0) {
		return fmt.Errorf("core: object has non-finite location (%v, %v)", o.X, o.Y)
	}
	if math.IsNaN(o.T) || math.IsInf(o.T, 0) {
		return fmt.Errorf("core: object has non-finite time %v", o.T)
	}
	if !(o.Weight >= 0) || math.IsInf(o.Weight, 0) {
		return fmt.Errorf("core: object weight %v must be finite and non-negative", o.Weight)
	}
	return nil
}

// EventKind classifies the three window-transition events of Section IV-C.
type EventKind uint8

const (
	// New: the object enters the current window Wc.
	New EventKind = iota
	// Grown: the object leaves Wc and enters the past window Wp.
	Grown
	// Expired: the object leaves Wp.
	Expired
)

// String returns the paper's name for the event kind.
func (k EventKind) String() string {
	switch k {
	case New:
		return "new"
	case Grown:
		return "grown"
	case Expired:
		return "expired"
	default:
		return fmt.Sprintf("EventKind(%d)", uint8(k))
	}
}

// Event is a window-transition event e = <g, l> for the rectangle object
// derived from Obj.
type Event struct {
	Kind EventKind
	Obj  Object
}

// Config is the SURGE query q = <A, a x b, |W|> plus the burst-score balance
// parameter alpha. Width and Height are the x- and y-extents of the query
// rectangle; WC and WP are the lengths of the current and past windows (the
// paper assumes WC == WP but the solutions, and this implementation, work
// with distinct lengths).
type Config struct {
	Width, Height float64
	WC, WP        float64
	Alpha         float64
	// Area restricts detection to a preferred area A. Objects outside A are
	// ignored. Nil means the whole plane.
	Area *geom.Rect
	// Cols optionally restricts the engine to the candidate bursty points
	// whose query-width column belongs to the set (the sharded pipeline's
	// ownership filter). Nil means the engine owns the whole plane.
	Cols *ColumnSet
}

// ColumnSet selects a periodic subset of the query-width columns of the
// plane. Column m is the x-interval [m*Width, (m+1)*Width); the columns are
// grouped into contiguous blocks of Block columns and the blocks are striped
// round-robin over Shards shards, so block B belongs to shard B mod Shards.
//
// The sharded pipeline gives shard Index the set {m : floor(m/Block) mod
// Shards == Index}. Because ownership is defined on integer column indices
// (the same floor(x/Width) arithmetic the engines' grids use), an engine and
// the router always agree on who owns a candidate point.
type ColumnSet struct {
	Block  int // columns per contiguous block (>= 1)
	Shards int // number of shards the blocks are striped over (>= 1)
	Index  int // this engine's shard index in [0, Shards)
}

// Validate reports whether the column set is usable.
func (s *ColumnSet) Validate() error {
	if s == nil {
		return nil
	}
	if s.Block < 1 || s.Shards < 1 || s.Index < 0 || s.Index >= s.Shards {
		return fmt.Errorf("core: invalid column set %+v", *s)
	}
	return nil
}

// Owns reports whether column m belongs to the set.
func (s *ColumnSet) Owns(m int) bool {
	if s == nil {
		return true
	}
	return s.ShardOf(m) == s.Index
}

// ShardOf returns the shard index owning column m (floor division, so the
// striping is uniform across negative columns too).
func (s *ColumnSet) ShardOf(m int) int {
	b := m / s.Block
	if m < 0 && m%s.Block != 0 {
		b--
	}
	r := b % s.Shards
	if r < 0 {
		r += s.Shards
	}
	return r
}

// OwnsCol reports whether the engine owns candidate points in column m;
// engines with no column restriction own every column.
func (c Config) OwnsCol(m int) bool { return c.Cols.Owns(m) }

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case !(c.Width > 0) || !(c.Height > 0) || math.IsInf(c.Width, 0) || math.IsInf(c.Height, 0):
		return errors.New("core: query rectangle must have positive finite width and height")
	case !(c.WC > 0) || !(c.WP > 0) || math.IsInf(c.WC, 0) || math.IsInf(c.WP, 0):
		return errors.New("core: window lengths must be positive and finite")
	case !(c.Alpha >= 0 && c.Alpha < 1): // also rejects NaN
		return errors.New("core: alpha must be in [0, 1)")
	case c.Area != nil && c.Area.Empty():
		return errors.New("core: preferred area must have positive extent")
	}
	return c.Cols.Validate()
}

// Score computes the burst score from window scores that are already
// normalised by the window lengths:
//
//	S = alpha * max(fc - fp, 0) + (1 - alpha) * fc.
func (c Config) Score(fc, fp float64) float64 {
	d := fc - fp
	if d < 0 {
		d = 0
	}
	return c.Alpha*d + (1-c.Alpha)*fc
}

// CoverRect returns the coverage rectangle of the rectangle object generated
// from an object anchored at (x, y): the set of points p such that the query
// region whose top-right corner is p covers the object. It is interpreted
// with open-closed semantics (geom.Rect.CoversOC).
func (c Config) CoverRect(x, y float64) geom.Rect {
	return geom.NewRect(x, y, c.Width, c.Height)
}

// RegionAt returns the query region whose top-right corner is p, interpreted
// with closed-open semantics (geom.Rect.ContainsCO).
func (c Config) RegionAt(p geom.Point) geom.Rect {
	return geom.Rect{MinX: p.X - c.Width, MinY: p.Y - c.Height, MaxX: p.X, MaxY: p.Y}
}

// InArea reports whether the object falls inside the preferred area.
func (c Config) InArea(o Object) bool {
	return c.Area == nil || c.Area.ContainsCO(o.Point())
}

// Result is the answer of a detection engine at the current stream time: the
// bursty point (top-right corner of the bursty region), the region itself and
// its burst score. Found is false when the windows hold no objects that could
// yield a positive score; Score is then 0 and Region is meaningless.
type Result struct {
	Point  geom.Point
	Region geom.Rect
	Score  float64
	FC, FP float64
	Found  bool
}

// Engine is the common interface of all single-region detectors.
type Engine interface {
	// Process applies one window-transition event.
	Process(ev Event)
	// Best reports the current bursty region.
	Best() Result
}

// TestEngineWrap, when non-nil, wraps every engine the surge package builds.
// It exists for fault-injection tests only — the serving layer uses it to
// plant a panicking engine inside a shard worker and assert the pipeline's
// panic containment end to end. Production code never sets it, so the
// nil check is the entire steady-state cost.
var TestEngineWrap func(Engine) Engine

// TopKEngine is the common interface of the top-k detectors.
type TopKEngine interface {
	Process(ev Event)
	// BestK reports the current top-k bursty regions in rank order. Slots
	// beyond the number of non-empty regions have Found == false.
	BestK() []Result
}

// TopKShard is the maskable per-problem search API a top-k engine exposes to
// the sharded pipeline's cross-shard greedy chain. The chain (Definition 9)
// is driven globally by a coordinator: for each rank i it collects every
// shard's best owned candidate for problem i, selects the global winner, and
// commits it back so the objects it covers become invisible to the problems
// of higher rank — exactly the level discipline the single-engine chain runs
// locally.
//
// The methods are a protocol, not independent queries: ProblemBest(i) is
// only meaningful when the globally selected answers of every rank < i have
// been committed with ApplyRank since the last stream event, and ApplyRank
// must be called rank by rank in ascending order. Engines answer over their
// owned candidate columns only (Config.Cols); the masking rules are defined
// on object identity, so an engine holding a halo copy of an object applies
// the same visibility change its owner does and the per-shard states stay
// mutually consistent.
type TopKShard interface {
	TopKEngine
	// ProblemBest reports the engine's best owned candidate for chain
	// problem i (1-based) under the mask state committed for ranks < i.
	ProblemBest(i int) Result
	// ApplyRank commits the globally selected answer for rank i: sel's
	// covered objects are masked out of the higher-ranked problems, and
	// objects that were masked at rank i for the previously committed
	// answer old — but are not covered by sel — become visible again.
	ApplyRank(i int, old, sel Result)
}

// CompareTopK is the canonical selection order of the top-k merges: found
// before not-found, higher score first, exact score ties broken on the
// region's coordinates (lexicographically ascending). Score ties are real in
// the multi-grid chains — the same object set can fill two overlapping cells
// of different shifted grids with bitwise-equal fold scores — so every
// implementation of the greedy chain (single-engine merge, per-layer
// selection, cross-shard coordinator) must pick ties identically or the
// masking of lower ranks diverges. Returns a negative value when a is
// better, positive when b is, 0 only for equal keys.
func CompareTopK(a, b Result) int {
	switch {
	case a.Found != b.Found:
		if a.Found {
			return -1
		}
		return 1
	case !a.Found:
		return 0
	case a.Score != b.Score:
		if a.Score > b.Score {
			return -1
		}
		return 1
	case a.Region.MinX != b.Region.MinX:
		if a.Region.MinX < b.Region.MinX {
			return -1
		}
		return 1
	case a.Region.MinY != b.Region.MinY:
		if a.Region.MinY < b.Region.MinY {
			return -1
		}
		return 1
	case a.Region.MaxX != b.Region.MaxX:
		if a.Region.MaxX < b.Region.MaxX {
			return -1
		}
		return 1
	case a.Region.MaxY != b.Region.MaxY:
		if a.Region.MaxY < b.Region.MaxY {
			return -1
		}
		return 1
	}
	return 0
}

// Stats carries cheap instrumentation counters shared by the engines. It
// powers Table II (search-trigger ratio) and the ablation benchmarks.
type Stats struct {
	// Events is the number of events processed.
	Events uint64
	// Searches is the number of snapshot (sweep-line) searches executed.
	Searches uint64
	// SearchEvents is the number of events whose processing triggered at
	// least one snapshot search.
	SearchEvents uint64
	// SweepEntries is the total number of rectangle entries fed to the
	// snapshot searches (a proxy for search cost).
	SweepEntries uint64
	// CellsTouched is the number of per-cell updates performed.
	CellsTouched uint64
}

// SearchRatio returns the fraction of events that triggered at least one
// snapshot search (the quantity reported in Table II).
func (s Stats) SearchRatio() float64 {
	if s.Events == 0 {
		return 0
	}
	return float64(s.SearchEvents) / float64(s.Events)
}
