package core

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"surge/internal/geom"
)

func validCfg() Config {
	return Config{Width: 1, Height: 1, WC: 1, WP: 1, Alpha: 0.5}
}

func TestConfigValidate(t *testing.T) {
	if err := validCfg().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Width: 0, Height: 1, WC: 1, WP: 1},
		{Width: 1, Height: 0, WC: 1, WP: 1},
		{Width: -1, Height: 1, WC: 1, WP: 1},
		{Width: 1, Height: 1, WC: 0, WP: 1},
		{Width: 1, Height: 1, WC: 1, WP: -2},
		{Width: 1, Height: 1, WC: 1, WP: 1, Alpha: 1},
		{Width: 1, Height: 1, WC: 1, WP: 1, Alpha: -0.1},
		{Width: 1, Height: 1, WC: 1, WP: 1, Alpha: math.NaN()},
		{Width: 1, Height: 1, WC: 1, WP: 1, Area: &geom.Rect{MinX: 1, MaxX: 0, MinY: 0, MaxY: 1}},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
	}
}

func TestScoreDefinition(t *testing.T) {
	c := validCfg()
	c.Alpha = 0.5
	cases := []struct {
		fc, fp, want float64
	}{
		{0, 0, 0},
		{2, 0, 2},      // 0.5*2 + 0.5*2
		{2, 2, 1},      // burst term clamped at 0: 0.5*0 + 0.5*2
		{2, 5, 1},      // negative difference clamped
		{4, 1, 3.5},    // 0.5*3 + 0.5*4
		{0, 10, 0},     // past-only region scores zero
		{1, 0.5, 0.75}, // 0.5*0.5 + 0.5*1
	}
	for _, tc := range cases {
		if got := c.Score(tc.fc, tc.fp); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Score(%v,%v) = %v, want %v", tc.fc, tc.fp, got, tc.want)
		}
	}
}

func TestScoreAlphaExtremes(t *testing.T) {
	c := validCfg()
	c.Alpha = 0
	if got := c.Score(3, 100); got != 3 {
		t.Fatalf("alpha=0 must ignore the past window: %v", got)
	}
	c.Alpha = 0.99
	// Near alpha=1 the burst term dominates.
	if got := c.Score(3, 3); math.Abs(got-0.03) > 1e-12 {
		t.Fatalf("Score(3,3) at alpha=.99 = %v, want 0.03", got)
	}
}

// TestScoreProperties: non-negativity, monotonicity in fc, antitonicity in
// fp — the facts the upper-bound lemmas rest on.
func TestScoreProperties(t *testing.T) {
	clamp := func(x float64) float64 {
		x = math.Abs(x)
		if !(x < 1e6) { // also catches NaN/Inf from quick's extreme inputs
			x = math.Mod(x, 1e6)
			if math.IsNaN(x) {
				x = 1
			}
		}
		return x
	}
	f := func(fcRaw, fpRaw, dRaw, aRaw float64) bool {
		fc, fp := clamp(fcRaw), clamp(fpRaw)
		d := clamp(dRaw)
		alpha := math.Mod(clamp(aRaw), 0.999)
		c := validCfg()
		c.Alpha = alpha
		s := c.Score(fc, fp)
		if s < 0 {
			return false
		}
		// Lemma 2's heart: S <= fc.
		if s > fc+1e-9*(1+fc) {
			return false
		}
		// Lemma 3 case 1: adding d to fc raises S by at most d.
		if c.Score(fc+d, fp) > s+d+1e-9*(1+s+d) {
			return false
		}
		// Monotone in fc, antitone in fp.
		if c.Score(fc+d, fp) < s-1e-12 || c.Score(fc, fp+d) > s+1e-12 {
			return false
		}
		// Lemma 3 case 3: removing d from fp raises S by at most alpha*d.
		fp2 := fp + d
		if c.Score(fc, fp) > c.Score(fc, fp2)+alpha*d+1e-9*(1+s) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestCoverRectRegionAtDuality(t *testing.T) {
	c := Config{Width: 2, Height: 3, WC: 1, WP: 1, Alpha: 0.5}
	rng := rand.New(rand.NewPCG(1, 1))
	for trial := 0; trial < 2000; trial++ {
		ox, oy := rng.Float64()*10, rng.Float64()*10
		px, py := rng.Float64()*14, rng.Float64()*14
		p := geom.Point{X: px, Y: py}
		covered := c.CoverRect(ox, oy).CoversOC(p)
		inRegion := c.RegionAt(p).ContainsCO(geom.Point{X: ox, Y: oy})
		if covered != inRegion {
			t.Fatalf("Theorem 1 duality violated: obj=(%v,%v) p=%+v", ox, oy, p)
		}
	}
}

func TestInArea(t *testing.T) {
	c := validCfg()
	if !c.InArea(Object{X: 1e9, Y: -1e9}) {
		t.Fatal("nil area must accept everything")
	}
	area := geom.NewRect(0, 0, 10, 10)
	c.Area = &area
	if !c.InArea(Object{X: 0, Y: 0}) {
		t.Fatal("bottom-left corner is inside (closed-open)")
	}
	if c.InArea(Object{X: 10, Y: 5}) {
		t.Fatal("right edge is outside (closed-open)")
	}
	if c.InArea(Object{X: 11, Y: 5}) {
		t.Fatal("outside point accepted")
	}
}

func TestEventKindString(t *testing.T) {
	if New.String() != "new" || Grown.String() != "grown" || Expired.String() != "expired" {
		t.Fatal("event kind names changed")
	}
	if EventKind(99).String() == "" {
		t.Fatal("unknown kinds must still format")
	}
}

func TestStatsSearchRatio(t *testing.T) {
	s := Stats{}
	if s.SearchRatio() != 0 {
		t.Fatal("zero events => ratio 0")
	}
	s.Events = 200
	s.SearchEvents = 10
	if got := s.SearchRatio(); math.Abs(got-0.05) > 1e-12 {
		t.Fatalf("ratio = %v, want 0.05", got)
	}
}
