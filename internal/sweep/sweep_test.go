package sweep

import (
	"math"
	"math/rand/v2"
	"testing"

	"surge/internal/core"
	"surge/internal/geom"
)

func cfg(w, h, wc, wp, alpha float64) core.Config {
	return core.Config{Width: w, Height: h, WC: wc, WP: wp, Alpha: alpha}
}

// bruteBest enumerates every arrangement-face representative (all pairs of
// x/y edge coordinates) and returns the maximum burst score via direct
// coverage tests. It is the ground truth for the sweep.
func bruteBest(c core.Config, entries []Entry) (float64, geom.Point) {
	var xs, ys []float64
	for _, e := range entries {
		xs = append(xs, e.X, e.X+c.Width)
		ys = append(ys, e.Y, e.Y+c.Height)
	}
	best := 0.0
	var bp geom.Point
	for _, x := range xs {
		for _, y := range ys {
			p := geom.Point{X: x, Y: y}
			fc, fp := 0.0, 0.0
			for _, e := range entries {
				if c.CoverRect(e.X, e.Y).CoversOC(p) {
					if e.Past {
						fp += e.Weight / c.WP
					} else {
						fc += e.Weight / c.WC
					}
				}
			}
			if s := c.Score(fc, fp); s > best {
				best = s
				bp = p
			}
		}
	}
	return best, bp
}

func almost(a, b float64) bool {
	d := math.Abs(a - b)
	m := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return d <= 1e-9*m
}

func TestSearchEmpty(t *testing.T) {
	var s Searcher
	res := s.SearchAll(cfg(1, 1, 1, 1, 0.5), nil)
	if res.Found {
		t.Fatalf("empty snapshot should not find a point, got %+v", res)
	}
	res = s.Search(cfg(1, 1, 1, 1, 0.5), []Entry{{X: 0, Y: 0, Weight: 1}}, geom.Rect{})
	if res.Found {
		t.Fatalf("empty domain should not find a point, got %+v", res)
	}
}

func TestSearchSingleEntry(t *testing.T) {
	c := cfg(2, 3, 10, 10, 0.5)
	var s Searcher
	res := s.SearchAll(c, []Entry{{X: 1, Y: 1, Weight: 5}})
	if !res.Found {
		t.Fatal("expected a point")
	}
	want := c.Score(0.5, 0) // 5/10 in current window
	if !almost(res.Score, want) {
		t.Fatalf("score = %v, want %v", res.Score, want)
	}
	// The point must be covered by the entry's coverage rectangle.
	if !c.CoverRect(1, 1).CoversOC(res.Point) {
		t.Fatalf("returned point %+v not covered by the only entry", res.Point)
	}
}

func TestSearchPastOnlyScoresZero(t *testing.T) {
	c := cfg(1, 1, 1, 1, 0.5)
	var s Searcher
	res := s.SearchAll(c, []Entry{{X: 0, Y: 0, Weight: 4, Past: true}})
	if res.Found {
		t.Fatalf("past-only snapshot has max score 0, got %+v", res)
	}
}

// TestSearchPaperExample reproduces Figure 3 of the paper: g1 (w=3) in the
// past window, g2 (w=1) and g3 (w=2) in the current window, |Wc|=|Wp|=1,
// alpha=0.5. The bursty point p3 lies in the overlap of g2 and g3 but
// outside g1, with burst score 3.
func TestSearchPaperExample(t *testing.T) {
	c := cfg(4, 2, 1, 1, 0.5)
	entries := []Entry{
		{X: 0.0, Y: 2.5, Weight: 3, Past: true}, // g1
		{X: 2.0, Y: 2.0, Weight: 1},             // g2
		{X: 1.0, Y: 3.0, Weight: 2},             // g3
	}
	var s Searcher
	res := s.SearchAll(c, entries)
	if !res.Found {
		t.Fatal("expected a point")
	}
	// Best is fc=3 (g2+g3), fp=0: S = 0.5*3 + 0.5*3 = 3.
	if !almost(res.Score, 3) {
		t.Fatalf("score = %v, want 3", res.Score)
	}
	if !almost(res.FC, 3) || !almost(res.FP, 0) {
		t.Fatalf("fc,fp = %v,%v want 3,0", res.FC, res.FP)
	}
}

// TestSearchPastAvoidance checks that the sweep finds points just outside a
// past rectangle: a past rectangle overlapping two current ones must be
// excluded from the best face.
func TestSearchPastAvoidance(t *testing.T) {
	c := cfg(2, 2, 1, 1, 0.9)
	entries := []Entry{
		{X: 0, Y: 0, Weight: 1},
		{X: 0.5, Y: 0.5, Weight: 1},
		{X: 0.25, Y: 0.25, Weight: 10, Past: true},
	}
	var s Searcher
	res := s.SearchAll(c, entries)
	want, _ := bruteBest(c, entries)
	if !almost(res.Score, want) {
		t.Fatalf("score = %v, want %v", res.Score, want)
	}
	// The past rectangle's coverage contains the whole overlap of the two
	// current ones, so the winner keeps a single current rectangle and
	// dodges the past one: fc=1, fp=0 => S = 0.9*1 + 0.1*1 = 1. (Taking both
	// currents would force fp=10 and score only 0.2.)
	if !almost(res.Score, 1) {
		t.Fatalf("score = %v, want 1 (avoiding the past rectangle)", res.Score)
	}
}

// TestSearchSharedEdge exercises the transient-state hazard: one current
// rectangle's bottom edge coincides with another's top edge. No point is
// covered by both, so the max must be a single weight.
func TestSearchSharedEdge(t *testing.T) {
	c := cfg(2, 1, 1, 1, 0.5)
	entries := []Entry{
		{X: 0, Y: 1, Weight: 1}, // covers y in (1, 2]
		{X: 0, Y: 0, Weight: 1}, // covers y in (0, 1]
	}
	var s Searcher
	res := s.SearchAll(c, entries)
	if !almost(res.Score, 1) {
		t.Fatalf("score = %v, want 1 (edge-sharing rectangles never co-cover)", res.Score)
	}
}

// TestSearchTouchingCorners: rectangles meeting at a corner do not co-cover
// any point under the half-open semantics.
func TestSearchTouchingCorners(t *testing.T) {
	c := cfg(1, 1, 1, 1, 0.5)
	entries := []Entry{
		{X: 0, Y: 0, Weight: 1},
		{X: 1, Y: 1, Weight: 1},
	}
	var s Searcher
	res := s.SearchAll(c, entries)
	if !almost(res.Score, 1) {
		t.Fatalf("score = %v, want 1", res.Score)
	}
}

func randomEntries(rng *rand.Rand, n int, span float64, pastProb float64) []Entry {
	entries := make([]Entry, n)
	for i := range entries {
		entries[i] = Entry{
			X:      rng.Float64() * span,
			Y:      rng.Float64() * span,
			Weight: 1 + rng.Float64()*99,
			Past:   rng.Float64() < pastProb,
		}
	}
	return entries
}

// TestSearchMatchesBruteForce is the core exactness property: on random
// snapshots the sweep equals the brute-force arrangement enumeration, for
// several alphas and window lengths.
func TestSearchMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 7))
	var s Searcher
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.IntN(24)
		alpha := rng.Float64() * 0.99
		wc := 0.5 + rng.Float64()*4
		wp := 0.5 + rng.Float64()*4
		c := cfg(1+rng.Float64()*2, 1+rng.Float64()*2, wc, wp, alpha)
		entries := randomEntries(rng, n, 6, 0.4)
		got := s.SearchAll(c, entries)
		want, wp2 := bruteBest(c, entries)
		gotScore := 0.0
		if got.Found {
			gotScore = got.Score
		}
		if !almost(gotScore, want) {
			t.Fatalf("trial %d (n=%d alpha=%.3f): sweep=%v brute=%v at %+v",
				trial, n, alpha, gotScore, want, wp2)
		}
		if got.Found {
			// The reported fc/fp must be the true coverage of the point.
			fc, fp := coverageAt(c, entries, got.Point)
			if !almost(fc, got.FC) || !almost(fp, got.FP) {
				t.Fatalf("trial %d: reported fc,fp=%v,%v but true coverage=%v,%v",
					trial, got.FC, got.FP, fc, fp)
			}
		}
	}
}

func coverageAt(c core.Config, entries []Entry, p geom.Point) (fc, fp float64) {
	for _, e := range entries {
		if c.CoverRect(e.X, e.Y).CoversOC(p) {
			if e.Past {
				fp += e.Weight / c.WP
			} else {
				fc += e.Weight / c.WC
			}
		}
	}
	return fc, fp
}

// TestSearchAlignedEntries stresses coincident edges: anchors on an integer
// lattice so that many rectangles share edges exactly.
func TestSearchAlignedEntries(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 9))
	var s Searcher
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.IntN(20)
		c := cfg(2, 2, 1, 1, rng.Float64()*0.9)
		entries := make([]Entry, n)
		for i := range entries {
			entries[i] = Entry{
				X:      float64(rng.IntN(5)),
				Y:      float64(rng.IntN(5)),
				Weight: float64(1 + rng.IntN(9)),
				Past:   rng.IntN(2) == 0,
			}
		}
		got := s.SearchAll(c, entries)
		want, _ := bruteBest(c, entries)
		gotScore := 0.0
		if got.Found {
			gotScore = got.Score
		}
		if !almost(gotScore, want) {
			t.Fatalf("trial %d: sweep=%v brute=%v entries=%+v", trial, gotScore, want, entries)
		}
	}
}

// TestSearchDomainPartition: the max over a partition of the plane into
// query-aligned cells must equal the global max — this is exactly the
// property Cell-CSPOT relies on.
func TestSearchDomainPartition(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 5))
	var s Searcher
	for trial := 0; trial < 150; trial++ {
		c := cfg(1.5, 1.25, 1, 2, rng.Float64()*0.9)
		entries := randomEntries(rng, 1+rng.IntN(18), 5, 0.35)
		global := s.SearchAll(c, entries)
		want := 0.0
		if global.Found {
			want = global.Score
		}
		// Partition a generous area into cells of the query size and take
		// the max of the per-cell clipped searches. Each cell only receives
		// the entries whose coverage overlaps it.
		best := 0.0
		for i := -2; i < 6; i++ {
			for j := -2; j < 6; j++ {
				dom := geom.NewRect(float64(i)*c.Width, float64(j)*c.Height, c.Width, c.Height)
				var local []Entry
				for _, e := range entries {
					if c.CoverRect(e.X, e.Y).Overlaps(dom) {
						local = append(local, e)
					}
				}
				if res := s.Search(c, local, dom); res.Found && res.Score > best {
					best = res.Score
				}
			}
		}
		if !almost(best, want) {
			t.Fatalf("trial %d: partition max=%v global=%v", trial, best, want)
		}
	}
}

// TestSearcherReuse verifies a Searcher produces identical results when
// reused across snapshots (scratch-state isolation).
func TestSearcherReuse(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 1))
	c := cfg(1, 1, 1, 1, 0.5)
	var shared Searcher
	for trial := 0; trial < 50; trial++ {
		entries := randomEntries(rng, 1+rng.IntN(15), 4, 0.3)
		var fresh Searcher
		a := shared.SearchAll(c, entries)
		b := fresh.SearchAll(c, entries)
		if a.Found != b.Found || (a.Found && !almost(a.Score, b.Score)) {
			t.Fatalf("trial %d: reused searcher %+v != fresh %+v", trial, a, b)
		}
	}
}

// TestSearchZeroWeightPast ensures alpha=0 ignores the past window entirely:
// the result must equal the pure current-window density maximum.
func TestSearchAlphaZeroIgnoresPast(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 2))
	var s Searcher
	for trial := 0; trial < 60; trial++ {
		c := cfg(1, 1, 1, 1, 0)
		entries := randomEntries(rng, 1+rng.IntN(15), 4, 0.5)
		withPast := s.SearchAll(c, entries)
		var curOnly []Entry
		for _, e := range entries {
			if !e.Past {
				curOnly = append(curOnly, e)
			}
		}
		noPast := s.SearchAll(c, curOnly)
		a, b := 0.0, 0.0
		if withPast.Found {
			a = withPast.Score
		}
		if noPast.Found {
			b = noPast.Score
		}
		if !almost(a, b) {
			t.Fatalf("trial %d: alpha=0 with past=%v without=%v", trial, a, b)
		}
	}
}
