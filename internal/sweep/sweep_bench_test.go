package sweep

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"surge/internal/geom"
)

// BenchmarkSearchAll measures the raw snapshot search (Algorithm 1) at the
// snapshot sizes Cell-CSPOT typically feeds it.
func BenchmarkSearchAll(b *testing.B) {
	for _, n := range []int{8, 32, 128, 512} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewPCG(1, uint64(n)))
			c := cfg(1, 1, 1, 1, 0.5)
			entries := randomEntries(rng, n, 3, 0.4)
			var s Searcher
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := s.SearchAll(c, entries)
				if n > 0 && !res.Found {
					b.Fatal("expected a result")
				}
			}
		})
	}
}

// BenchmarkSearchClipped measures the domain-restricted variant used for
// per-cell searches.
func BenchmarkSearchClipped(b *testing.B) {
	rng := rand.New(rand.NewPCG(2, 3))
	c := cfg(1, 1, 1, 1, 0.5)
	entries := randomEntries(rng, 64, 2, 0.4)
	dom := geom.NewRect(0.5, 0.5, 1, 1)
	var s Searcher
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Search(c, entries, dom)
	}
}
