// Package sweep implements SL-CSPOT (Algorithm 1 of the paper): given a
// snapshot of rectangle objects tagged with the window they belong to, find a
// point with the maximum burst score, optionally restricted to a search
// domain.
//
// # Exactness
//
// Coverage rectangles use open-closed semantics (geom.Rect.CoversOC), under
// which the coverage set of any point p equals the coverage set of the open
// arrangement face immediately to its left and below (DESIGN.md Section 1).
// The sweep therefore only needs to evaluate the open faces: the x-axis is
// cut into open intervals by the vertical edges of the rectangles (the
// paper's "2n+1 intervals") and a horizontal line sweeps the distinct edge
// y-coordinates top-down. Each face between two consecutive sweep positions
// is represented by an interior point ("a point beneath the interval,
// between the sweep-line and the next horizontal edge"), whose true burst
// score equals the face score exactly.
//
// Removing a past-window rectangle can *increase* scores, so faces are
// evaluated only after every edge event at a given y has been applied;
// evaluating mid-update could report a transient coverage set that no real
// point has.
package sweep

import (
	"math"
	"slices"
	"sort"

	"surge/internal/core"
	"surge/internal/geom"
)

// Entry is one rectangle object in a snapshot: the anchor (bottom-left
// corner, i.e. the originating object's location), its weight, and whether it
// currently belongs to the past window.
type Entry struct {
	X, Y   float64
	Weight float64
	Past   bool
}

// Result is the outcome of a snapshot search. Point is an interior
// representative of the best open face; FC and FP are the normalised window
// scores of that point and Score the burst score. Found is false when the
// snapshot admits no point with positive score.
type Result struct {
	Point  geom.Point
	FC, FP float64
	Score  float64
	Found  bool
}

// Searcher performs snapshot searches. It is reusable to amortise its
// scratch allocations; a zero Searcher is ready to use. Searcher is not safe
// for concurrent use.
type Searcher struct {
	xs      []float64
	fc, fp  []float64
	events  []edgeEvent
	touched []int32
	mark    []int32
	epoch   int32
}

type edgeEvent struct {
	y      float64
	lo, hi int32 // affected interval index range [lo, hi)
	wc, wp float64
}

// Search finds a point with the maximum burst score among the open faces of
// the arrangement of entries restricted to the open domain
// (domain.MinX, domain.MaxX) x (domain.MinY, domain.MaxY). The returned
// point is interior to the best face, so its burst score is exact even under
// the global coverage semantics (with entries outside the domain's reach
// excluded by the caller).
func (s *Searcher) Search(cfg core.Config, entries []Entry, domain geom.Rect) Result {
	if len(entries) == 0 || domain.Empty() {
		return Result{}
	}

	// Collect the x-boundaries: domain clamps plus every vertical edge
	// strictly inside the domain.
	s.xs = s.xs[:0]
	s.xs = append(s.xs, domain.MinX, domain.MaxX)
	for _, e := range entries {
		if x := e.X; x > domain.MinX && x < domain.MaxX {
			s.xs = append(s.xs, x)
		}
		if x := e.X + cfg.Width; x > domain.MinX && x < domain.MaxX {
			s.xs = append(s.xs, x)
		}
	}
	slices.Sort(s.xs) // generic sort: no interface boxing on the search path
	s.xs = dedupe(s.xs)
	nIv := len(s.xs) - 1 // number of open intervals
	if nIv <= 0 {
		return Result{}
	}
	s.fc = grow(s.fc, nIv)
	s.fp = grow(s.fp, nIv)
	s.mark = grow32(s.mark, nIv)
	s.epoch++

	// Build edge events. Each entry contributes an add event at its (clipped)
	// top edge and a remove event at its (clipped) bottom edge. An entry
	// whose y-span does not intersect the open domain, or whose x-span covers
	// no interval, is skipped.
	s.events = s.events[:0]
	wc := 1 / cfg.WC
	wp := 1 / cfg.WP
	for _, e := range entries {
		top := e.Y + cfg.Height
		bot := e.Y
		if top > domain.MaxY {
			top = domain.MaxY
		}
		if bot < domain.MinY {
			bot = domain.MinY
		}
		if top <= domain.MinY || bot >= domain.MaxY || top <= bot {
			continue
		}
		lo, hi := s.intervalRange(e.X, e.X+cfg.Width)
		if lo >= hi {
			continue
		}
		var dc, dp float64
		if e.Past {
			dp = e.Weight * wp
		} else {
			dc = e.Weight * wc
		}
		s.events = append(s.events,
			edgeEvent{y: top, lo: lo, hi: hi, wc: dc, wp: dp},
			edgeEvent{y: bot, lo: lo, hi: hi, wc: -dc, wp: -dp},
		)
	}
	if len(s.events) == 0 {
		return Result{}
	}
	// Sweep order is y-descending; the remaining fields make the order
	// total, so the floating-point accumulation sequence for events sharing
	// a y — and with it the reported score bits — is a pure function of the
	// entry set, independent of the sort algorithm's tie handling.
	// slices.SortFunc also keeps the per-search sort allocation-free
	// (sort.Slice boxes the slice and closure on every call).
	slices.SortFunc(s.events, func(a, b edgeEvent) int {
		switch {
		case a.y > b.y:
			return -1
		case a.y < b.y:
			return 1
		}
		if a.lo != b.lo {
			return int(a.lo - b.lo)
		}
		if a.hi != b.hi {
			return int(a.hi - b.hi)
		}
		switch {
		case a.wc < b.wc:
			return -1
		case a.wc > b.wc:
			return 1
		case a.wp < b.wp:
			return -1
		case a.wp > b.wp:
			return 1
		}
		return 0
	})

	best := Result{Score: math.Inf(-1)}
	for k := 0; k < len(s.events); {
		y := s.events[k].y
		// Apply every event at this sweep position, remembering which
		// intervals changed.
		s.touched = s.touched[:0]
		for ; k < len(s.events) && s.events[k].y == y; k++ {
			ev := s.events[k]
			for i := ev.lo; i < ev.hi; i++ {
				s.fc[i] += ev.wc
				s.fp[i] += ev.wp
				if s.mark[i] != s.epoch {
					s.mark[i] = s.epoch
					s.touched = append(s.touched, i)
				}
			}
		}
		if y <= domain.MinY {
			break // no band below the domain
		}
		// The band below y extends down to the next event position (or the
		// domain floor). The representative point must be *interior* to the
		// face — the paper's "point beneath I, between the sweep-line and
		// the next horizontal edge" — because on a face boundary the true
		// coverage may include rectangles outside this search's entry set.
		yLo := domain.MinY
		if k < len(s.events) && s.events[k].y > yLo {
			yLo = s.events[k].y
		}
		midY := interior(yLo, y)
		// Evaluate the affected intervals for this band. Untouched intervals
		// keep the score they had in the band above, which was already
		// compared.
		for _, i := range s.touched {
			s.mark[i] = s.epoch - 1 // allow re-touching at the next y
			sc := cfg.Score(s.fc[i], s.fp[i])
			if sc > best.Score {
				best = Result{
					Point: geom.Point{X: interior(s.xs[i], s.xs[i+1]), Y: midY},
					FC:    s.fc[i],
					FP:    s.fp[i],
					Score: sc,
					Found: true,
				}
			}
		}
	}
	if !best.Found || best.Score <= 0 {
		return Result{}
	}
	return best
}

// intervalRange returns the half-open range [lo, hi) of interval indices
// fully covered by the coverage span (x1, x2].
func (s *Searcher) intervalRange(x1, x2 float64) (int32, int32) {
	// Interval i is (xs[i], xs[i+1]); it is covered iff x1 <= xs[i] and
	// xs[i+1] <= x2.
	lo := sort.SearchFloat64s(s.xs, x1)
	hi := sort.SearchFloat64s(s.xs, x2)
	if hi == len(s.xs) || s.xs[hi] != x2 {
		// x2 is beyond the last boundary <= x2; intervals end strictly
		// before it, so the last covered interval is hi-1 ... but only if
		// xs[hi-1+1] <= x2, i.e. boundary hi-1 terminates an interval within
		// x2. hi currently points at the first boundary > x2.
		hi--
	}
	if lo < 0 {
		lo = 0
	}
	if hi > len(s.xs)-1 {
		hi = len(s.xs) - 1
	}
	if lo > hi {
		return 0, 0
	}
	return int32(lo), int32(hi)
}

// SearchAll runs Search over a domain large enough to contain every coverage
// rectangle in the snapshot, so it returns the global bursty point (the
// oracle used by tests and the approximation-ratio experiments).
func (s *Searcher) SearchAll(cfg core.Config, entries []Entry) Result {
	if len(entries) == 0 {
		return Result{}
	}
	d := geom.Rect{
		MinX: math.Inf(1), MinY: math.Inf(1),
		MaxX: math.Inf(-1), MaxY: math.Inf(-1),
	}
	for _, e := range entries {
		if e.X < d.MinX {
			d.MinX = e.X
		}
		if e.Y < d.MinY {
			d.MinY = e.Y
		}
		if e.X+cfg.Width > d.MaxX {
			d.MaxX = e.X + cfg.Width
		}
		if e.Y+cfg.Height > d.MaxY {
			d.MaxY = e.Y + cfg.Height
		}
	}
	// Expand so that every edge is strictly inside the domain and the clamps
	// never coincide with an edge.
	pad := 1 + 1e-9*(math.Abs(d.MaxX)+math.Abs(d.MaxY))
	d.MinX -= pad
	d.MinY -= pad
	d.MaxX += pad
	d.MaxY += pad
	return s.Search(cfg, entries, d)
}

// interior returns a point strictly inside the open interval (lo, hi) when
// one is representable, preferring the midpoint. For degenerate one-ULP
// intervals it falls back to hi.
func interior(lo, hi float64) float64 {
	m := lo + (hi-lo)/2
	if m > lo && m < hi {
		return m
	}
	if n := math.Nextafter(lo, hi); n > lo && n < hi {
		return n
	}
	return hi
}

func dedupe(xs []float64) []float64 {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

func grow(s []float64, n int) []float64 {
	if cap(s) < n {
		s = make([]float64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

func grow32(s []int32, n int) []int32 {
	if cap(s) < n {
		s = make([]int32, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}
