// Package geom provides the small set of planar geometry primitives used by
// the SURGE engines: points and axis-aligned rectangles with the half-open
// coverage semantics fixed in DESIGN.md.
//
// Two rectangle interpretations appear throughout the code base:
//
//   - A *region* anchored at its bottom-left corner covers the half-open box
//     [MinX, MaxX) x [MinY, MaxY). Regions partition the plane when laid out
//     on a grid, which GAP-SURGE relies on.
//   - A *coverage rectangle* of a rectangle object covers the half-open box
//     (MinX, MaxX] x (MinY, MaxY]. With this choice the region whose
//     top-right corner is p covers exactly the objects whose coverage
//     rectangle covers p, making the SURGE-to-cSPOT reduction (Theorem 1 of
//     the paper) exact rather than almost-everywhere.
package geom

// Point is a location in the plane.
type Point struct {
	X, Y float64
}

// Rect is an axis-aligned rectangle described by its extreme coordinates.
// Whether the boundary belongs to the rectangle depends on the interpretation
// (see the package comment); the predicates below make the choice explicit.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// NewRect returns the rectangle with the given bottom-left corner and size.
func NewRect(x, y, w, h float64) Rect {
	return Rect{MinX: x, MinY: y, MaxX: x + w, MaxY: y + h}
}

// Width returns the x-extent of r.
func (r Rect) Width() float64 { return r.MaxX - r.MinX }

// Height returns the y-extent of r.
func (r Rect) Height() float64 { return r.MaxY - r.MinY }

// Empty reports whether r has no interior.
func (r Rect) Empty() bool { return r.MaxX <= r.MinX || r.MaxY <= r.MinY }

// ContainsCO reports whether p lies in r under closed-open (region)
// semantics: MinX <= p.X < MaxX and MinY <= p.Y < MaxY.
func (r Rect) ContainsCO(p Point) bool {
	return r.MinX <= p.X && p.X < r.MaxX && r.MinY <= p.Y && p.Y < r.MaxY
}

// CoversOC reports whether p lies in r under open-closed (coverage)
// semantics: MinX < p.X <= MaxX and MinY < p.Y <= MaxY.
func (r Rect) CoversOC(p Point) bool {
	return r.MinX < p.X && p.X <= r.MaxX && r.MinY < p.Y && p.Y <= r.MaxY
}

// Overlaps reports whether the interiors of r and o intersect. For two
// half-open boxes of either orientation this is also exactly the condition
// under which they share at least one common point.
func (r Rect) Overlaps(o Rect) bool {
	return r.MinX < o.MaxX && o.MinX < r.MaxX && r.MinY < o.MaxY && o.MinY < r.MaxY
}

// Intersect returns the intersection of the coordinate spans of r and o.
// The result may be empty.
func (r Rect) Intersect(o Rect) Rect {
	return Rect{
		MinX: maxf(r.MinX, o.MinX),
		MinY: maxf(r.MinY, o.MinY),
		MaxX: minf(r.MaxX, o.MaxX),
		MaxY: minf(r.MaxY, o.MaxY),
	}
}

// Union returns the smallest rectangle containing both r and o.
func (r Rect) Union(o Rect) Rect {
	return Rect{
		MinX: minf(r.MinX, o.MinX),
		MinY: minf(r.MinY, o.MinY),
		MaxX: maxf(r.MaxX, o.MaxX),
		MaxY: maxf(r.MaxY, o.MaxY),
	}
}

// TopRight returns the top-right corner of r.
func (r Rect) TopRight() Point { return Point{X: r.MaxX, Y: r.MaxY} }

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
