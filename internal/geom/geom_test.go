package geom

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestNewRect(t *testing.T) {
	r := NewRect(1, 2, 3, 4)
	if r.MinX != 1 || r.MinY != 2 || r.MaxX != 4 || r.MaxY != 6 {
		t.Fatalf("NewRect = %+v", r)
	}
	if r.Width() != 3 || r.Height() != 4 {
		t.Fatalf("size = %v x %v", r.Width(), r.Height())
	}
}

func TestEmpty(t *testing.T) {
	if NewRect(0, 0, 1, 1).Empty() {
		t.Fatal("positive rect must not be empty")
	}
	if !NewRect(0, 0, 0, 1).Empty() || !NewRect(0, 0, 1, 0).Empty() {
		t.Fatal("zero-extent rect must be empty")
	}
	if !(Rect{MinX: 1, MaxX: 0, MinY: 0, MaxY: 1}).Empty() {
		t.Fatal("inverted rect must be empty")
	}
}

func TestContainsCOBoundaries(t *testing.T) {
	r := NewRect(0, 0, 2, 2)
	cases := []struct {
		p    Point
		want bool
	}{
		{Point{0, 0}, true},     // closed at min
		{Point{2, 2}, false},    // open at max
		{Point{2, 1}, false},    // open at max x
		{Point{1, 2}, false},    // open at max y
		{Point{1, 1}, true},     // interior
		{Point{-0.1, 1}, false}, // outside
	}
	for _, c := range cases {
		if got := r.ContainsCO(c.p); got != c.want {
			t.Errorf("ContainsCO(%+v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestCoversOCBoundaries(t *testing.T) {
	r := NewRect(0, 0, 2, 2)
	cases := []struct {
		p    Point
		want bool
	}{
		{Point{0, 0}, false}, // open at min
		{Point{2, 2}, true},  // closed at max
		{Point{0, 1}, false},
		{Point{1, 0}, false},
		{Point{2, 0.5}, true},
		{Point{1, 1}, true},
	}
	for _, c := range cases {
		if got := r.CoversOC(c.p); got != c.want {
			t.Errorf("CoversOC(%+v) = %v, want %v", c.p, got, c.want)
		}
	}
}

// TestCoverageComplement: for a region and the coverage rect of the same
// box, ContainsCO(p) of the region anchored at p-top-right corner duality.
// Specifically: region [l,l+w) x [b,b+h) contains (x, y) iff the coverage
// rect anchored at (x, y) covers the region's top-right corner.
func TestRegionCoverageDuality(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	for trial := 0; trial < 2000; trial++ {
		w := 0.5 + rng.Float64()
		h := 0.5 + rng.Float64()
		l := rng.Float64() * 4
		b := rng.Float64() * 4
		x := rng.Float64() * 6
		y := rng.Float64() * 6
		region := NewRect(l, b, w, h)
		cover := NewRect(x, y, w, h)
		corner := region.TopRight()
		if region.ContainsCO(Point{x, y}) != cover.CoversOC(corner) {
			t.Fatalf("duality violated: region=%+v obj=(%v,%v)", region, x, y)
		}
	}
	// And exactly on the interesting boundaries:
	region := NewRect(0, 0, 1, 1)
	for _, c := range []struct {
		x, y float64
	}{{0, 0}, {1, 1}, {0.999999, 0}, {0, 0.999999}} {
		cover := NewRect(c.x, c.y, 1, 1)
		if region.ContainsCO(Point{c.x, c.y}) != cover.CoversOC(region.TopRight()) {
			t.Fatalf("boundary duality violated at (%v,%v)", c.x, c.y)
		}
	}
}

func TestOverlaps(t *testing.T) {
	a := NewRect(0, 0, 2, 2)
	if !a.Overlaps(NewRect(1, 1, 2, 2)) {
		t.Fatal("overlapping rects")
	}
	if a.Overlaps(NewRect(2, 0, 1, 1)) {
		t.Fatal("edge-touching rects do not overlap (no shared interior)")
	}
	if a.Overlaps(NewRect(2, 2, 1, 1)) {
		t.Fatal("corner-touching rects do not overlap")
	}
	if a.Overlaps(NewRect(5, 5, 1, 1)) {
		t.Fatal("disjoint rects")
	}
}

func TestOverlapsSymmetric(t *testing.T) {
	f := func(ax, ay, aw, ah, bx, by, bw, bh float64) bool {
		a := NewRect(ax, ay, abs(aw), abs(ah))
		b := NewRect(bx, by, abs(bw), abs(bh))
		return a.Overlaps(b) == b.Overlaps(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestIntersectUnion(t *testing.T) {
	a := NewRect(0, 0, 3, 3)
	b := NewRect(2, 1, 3, 3)
	i := a.Intersect(b)
	if i.MinX != 2 || i.MinY != 1 || i.MaxX != 3 || i.MaxY != 3 {
		t.Fatalf("intersect = %+v", i)
	}
	u := a.Union(b)
	if u.MinX != 0 || u.MinY != 0 || u.MaxX != 5 || u.MaxY != 4 {
		t.Fatalf("union = %+v", u)
	}
	if !a.Intersect(NewRect(10, 10, 1, 1)).Empty() {
		t.Fatal("disjoint intersection must be empty")
	}
}

// TestOverlapIffSharedPoint: two coverage boxes overlap iff some lattice of
// sample points is covered by both (probabilistic check of the claim in the
// Overlaps doc).
func TestOverlapIffSharedPoint(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	for trial := 0; trial < 500; trial++ {
		a := NewRect(rng.Float64()*3, rng.Float64()*3, 0.5+rng.Float64(), 0.5+rng.Float64())
		b := NewRect(rng.Float64()*3, rng.Float64()*3, 0.5+rng.Float64(), 0.5+rng.Float64())
		if a.Overlaps(b) {
			// The intersection box must be non-empty, and its top-right
			// corner is covered (OC) by both.
			i := a.Intersect(b)
			if i.Empty() {
				t.Fatalf("overlapping rects with empty intersection: %+v %+v", a, b)
			}
			p := i.TopRight()
			if !a.CoversOC(p) || !b.CoversOC(p) {
				t.Fatalf("shared corner %+v not covered by both %+v %+v", p, a, b)
			}
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
