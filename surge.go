package surge

import (
	"errors"
	"fmt"

	"surge/internal/ag2"
	"surge/internal/cellcspot"
	"surge/internal/core"
	"surge/internal/gapsurge"
	"surge/internal/geom"
	"surge/internal/shard"
	"surge/internal/topk"
	"surge/internal/window"
)

// ErrClosed is returned by Push, PushBatch and AdvanceTo after Close. The
// query methods (Best, Stats, Now, Live, Checkpoint) keep reporting the
// state captured at Close, so a server can drain its answer and write a
// final checkpoint during shutdown while new ingests are rejected.
var ErrClosed = errors.New("surge: detector is closed")

// Algorithm selects a detection engine.
type Algorithm int

const (
	// CellCSPOT is the paper's exact solution (Algorithm 2, "CCS").
	CellCSPOT Algorithm = iota
	// StaticBound is the exact B-CCS ablation: static upper bounds only.
	StaticBound
	// Baseline is the exact Base ablation: no upper bounds.
	Baseline
	// AG2 is the adapted continuous-MaxRS baseline of Amagata & Hara.
	AG2
	// GridApprox is GAP-SURGE (Algorithm 3), the O(log n) grid approximation.
	GridApprox
	// MultiGrid is MGAP-SURGE (Algorithm 5), the best of four shifted grids.
	MultiGrid
	// Oracle recomputes the bursty point from scratch on every query. It is
	// exact and simple but slow; it serves as the reference answer.
	Oracle
)

// String returns the paper's abbreviation for the algorithm.
func (a Algorithm) String() string {
	switch a {
	case CellCSPOT:
		return "CCS"
	case StaticBound:
		return "B-CCS"
	case Baseline:
		return "Base"
	case AG2:
		return "aG2"
	case GridApprox:
		return "GAPS"
	case MultiGrid:
		return "MGAPS"
	case Oracle:
		return "Oracle"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// ParseAlgorithm is the inverse of Algorithm.String: it parses the paper's
// abbreviation (case-insensitive; "BCCS" is accepted for "B-CCS") as used by
// surged's -algo flag and the server's query configuration.
func ParseAlgorithm(s string) (Algorithm, error) {
	switch {
	case equalFold(s, "CCS"):
		return CellCSPOT, nil
	case equalFold(s, "B-CCS"), equalFold(s, "BCCS"):
		return StaticBound, nil
	case equalFold(s, "Base"):
		return Baseline, nil
	case equalFold(s, "aG2"):
		return AG2, nil
	case equalFold(s, "GAPS"):
		return GridApprox, nil
	case equalFold(s, "MGAPS"):
		return MultiGrid, nil
	case equalFold(s, "Oracle"):
		return Oracle, nil
	default:
		return 0, fmt.Errorf("surge: unknown algorithm %q (want CCS, B-CCS, Base, aG2, GAPS, MGAPS or Oracle)", s)
	}
}

// equalFold is strings.EqualFold for the ASCII names above, kept local so
// the package's import set stays unchanged.
func equalFold(s, t string) bool {
	if len(s) != len(t) {
		return false
	}
	for i := 0; i < len(s); i++ {
		a, b := s[i], t[i]
		if 'A' <= a && a <= 'Z' {
			a += 'a' - 'A'
		}
		if 'A' <= b && b <= 'Z' {
			b += 'a' - 'A'
		}
		if a != b {
			return false
		}
	}
	return true
}

// Point is a location in the plane.
type Point struct {
	X, Y float64
}

// Region is an axis-aligned rectangle; a detected region covers the
// half-open box [MinX, MaxX) x [MinY, MaxY).
type Region struct {
	MinX, MinY, MaxX, MaxY float64
}

// Contains reports whether the region covers the point (x, y).
func (r Region) Contains(x, y float64) bool {
	return r.MinX <= x && x < r.MaxX && r.MinY <= y && y < r.MaxY
}

// Overlaps reports whether two regions share interior points.
func (r Region) Overlaps(o Region) bool {
	return r.MinX < o.MaxX && o.MinX < r.MaxX && r.MinY < o.MaxY && o.MinY < r.MaxY
}

// Object is one stream element: a weighted point created at Time.
type Object struct {
	X, Y   float64
	Weight float64
	Time   float64
}

// Result is a detected bursty region. When Found is false the windows
// contain nothing that yields a positive burst score and the other fields
// are zero.
type Result struct {
	Region Region
	Score  float64
	Found  bool
}

// Stats exposes the engines' instrumentation counters (see core.Stats).
type Stats struct {
	Events       uint64
	Searches     uint64
	SearchEvents uint64
	SweepEntries uint64
	CellsTouched uint64
}

// SearchRatio is the fraction of events that triggered at least one snapshot
// search — the quantity of the paper's Table II.
func (s Stats) SearchRatio() float64 {
	if s.Events == 0 {
		return 0
	}
	return float64(s.SearchEvents) / float64(s.Events)
}

// Options configures a detector.
type Options struct {
	// Width and Height are the query-rectangle extents (the paper's a x b).
	Width, Height float64
	// Window is the length of the current window |Wc|.
	Window float64
	// PastWindow is the length of the past window |Wp|; 0 means equal to
	// Window (the paper's default).
	PastWindow float64
	// Alpha balances burstiness against significance; it must lie in [0, 1).
	Alpha float64
	// Area optionally restricts detection to a preferred area A; objects
	// outside are ignored.
	Area *Region
	// AG2Gamma is the aG2 grid-cell multiplier (default 10, as in the
	// paper's experiments). Ignored by the other algorithms.
	AG2Gamma float64
	// CountWindows switches from the paper's time-based sliding windows to
	// count-based ones: Window and PastWindow are then object counts (the
	// current window holds the last Window objects), and scores are
	// normalised by those counts. Object times are still required to be
	// non-decreasing.
	CountWindows bool
	// Shards selects the sharded concurrent pipeline: the plane is
	// partitioned into query-width column blocks striped over Shards engine
	// goroutines, each owning the candidate bursty points of its columns,
	// with boundary objects replicated into a one-query-width halo so every
	// shard scores its candidates over complete data. 0 or 1 keeps the
	// single-engine path with its exact current behaviour. The sharded
	// detector returns the same best scores as the single-engine path;
	// call Close when done to stop the shard goroutines. AG2 has no sharded
	// variant and silently falls back to the single-engine path
	// (Detector.Shards reports the effective count).
	Shards int
	// ShardBlockCols is the ownership block width in query-width columns
	// for the sharded pipeline (0 selects the default). Smaller blocks
	// spread hotspots over more shards; larger blocks route fewer boundary
	// objects to two shards.
	ShardBlockCols int
	// ShardFlushEvents fixes the number of events the shard router buffers
	// per shard before shipping a batch to the shard goroutine. 0 (the
	// default) selects backlog-adaptive batching: small batches while a
	// shard's channel is empty, for low detection latency, doubling with
	// the channel depth up to the maximum under backlog, for throughput.
	// Batch sizing never changes which events a shard sees or their order,
	// so results are identical under every setting. Ignored on the
	// single-engine path. Runtime tuning, not logical state: checkpoints do
	// not record it, so pass it again on restore (RestoreShardedTuned; the
	// server re-applies its configured value automatically).
	ShardFlushEvents int
}

func (o Options) config() (core.Config, error) {
	wp := o.PastWindow
	if wp == 0 {
		wp = o.Window
	}
	cfg := core.Config{
		Width:  o.Width,
		Height: o.Height,
		WC:     o.Window,
		WP:     wp,
		Alpha:  o.Alpha,
	}
	if o.Area != nil {
		cfg.Area = &geom.Rect{MinX: o.Area.MinX, MinY: o.Area.MinY, MaxX: o.Area.MaxX, MaxY: o.Area.MaxY}
	}
	return cfg, cfg.Validate()
}

type statser interface{ Stats() core.Stats }

// Detector continuously maintains the bursty region over a stream of
// objects. It is not safe for concurrent use by multiple goroutines: with
// Options.Shards >= 2 the parallelism lives inside (a pipeline of per-shard
// engine goroutines), while Push, PushBatch and the query methods are still
// called from a single goroutine.
type Detector struct {
	alg      Algorithm
	cfg      core.Config
	win      window.Source
	eng      core.Engine     // single-engine path; nil when sharded
	pipe     *shard.Pipeline // sharded pipeline; nil when single-engine
	cur      core.Result
	err      error              // first pipeline failure, surfaced by Err
	liveObjs map[uint64]liveObj // live set for Checkpoint and AttachTopK
	ckptObjs []checkpointObject // checkpoint scratch, reused across calls
	taps     []*TopKDetector    // attached top-k detectors fed every event
	ctaps    []*TopKDetector    // attached top-k detectors riding the shard workers
	ag2Gamma float64

	// AttachTopKBest state: the chain serving Best, and whether the
	// single-region engines were retired. engOff outlives bestChain — if the
	// serving chain is detached the detector degrades to its retained answer
	// (recordErr) instead of touching the dropped engines.
	bestChain *TopKDetector
	engOff    bool
	counted   bool
	shards    int // requested Options.Shards (recorded in checkpoints)
	blkCols   int // requested Options.ShardBlockCols
	flushEvs  int // requested Options.ShardFlushEvents (not checkpointed)
	closed    bool

	// The window engine's emit callbacks, captured once: binding a method
	// value per Push would put one closure allocation on the per-object hot
	// path.
	stepFn      func(core.Event)
	stepQuietFn func(core.Event)
	routeStepFn func(core.Event)

	finalStats Stats // merged stats captured by Close (sharded path)
}

// New returns a detector running the given algorithm.
func New(alg Algorithm, opt Options) (*Detector, error) {
	cfg, err := opt.config()
	if err != nil {
		return nil, err
	}
	win, err := newSource(opt, cfg)
	if err != nil {
		return nil, err
	}
	gamma := opt.AG2Gamma
	if gamma == 0 {
		gamma = 10
	}
	d := &Detector{
		alg: alg, cfg: cfg, win: win,
		liveObjs: make(map[uint64]liveObj),
		ag2Gamma: gamma,
		counted:  opt.CountWindows,
		shards:   opt.Shards,
		blkCols:  opt.ShardBlockCols,
		flushEvs: opt.ShardFlushEvents,
	}
	d.stepFn = d.step
	d.stepQuietFn = d.stepQuiet
	d.routeStepFn = d.routeStep
	if opt.Shards >= 2 && alg != AG2 {
		d.pipe, err = shard.NewWithParams(cfg, opt.Shards, opt.ShardBlockCols,
			shard.Params{FlushEvents: opt.ShardFlushEvents},
			func(scfg core.Config) (core.Engine, error) { return newEngine(alg, scfg, opt) })
		if err != nil {
			return nil, err
		}
		return d, nil
	}
	d.eng, err = newEngine(alg, cfg, opt)
	if err != nil {
		return nil, err
	}
	return d, nil
}

// newSource builds the time- or count-based window event generator.
func newSource(opt Options, cfg core.Config) (window.Source, error) {
	if !opt.CountWindows {
		return window.New(cfg.WC, cfg.WP)
	}
	nc, np := int(cfg.WC), int(cfg.WP)
	if float64(nc) != cfg.WC || float64(np) != cfg.WP {
		return nil, fmt.Errorf("surge: count-based windows need integer counts, got %v/%v", cfg.WC, cfg.WP)
	}
	return window.NewCount(nc, np)
}

func newEngine(alg Algorithm, cfg core.Config, opt Options) (core.Engine, error) {
	eng, err := newEngineRaw(alg, cfg, opt)
	if err == nil && core.TestEngineWrap != nil {
		eng = core.TestEngineWrap(eng)
	}
	return eng, err
}

func newEngineRaw(alg Algorithm, cfg core.Config, opt Options) (core.Engine, error) {
	switch alg {
	case CellCSPOT:
		return cellcspot.New(cfg, cellcspot.ModeCCS)
	case StaticBound:
		return cellcspot.New(cfg, cellcspot.ModeStatic)
	case Baseline:
		return cellcspot.New(cfg, cellcspot.ModeBase)
	case AG2:
		gamma := opt.AG2Gamma
		if gamma == 0 {
			gamma = 10
		}
		return ag2.New(cfg, gamma)
	case GridApprox:
		return gapsurge.New(cfg, false)
	case MultiGrid:
		return gapsurge.New(cfg, true)
	case Oracle:
		return topk.NewOracle(cfg)
	default:
		return nil, fmt.Errorf("surge: unknown algorithm %v", alg)
	}
}

// Algorithm returns the detector's algorithm.
func (d *Detector) Algorithm() Algorithm { return d.alg }

// Options returns the detector's effective configuration — for a restored
// detector, the options reconstructed from the checkpoint (with any
// RestoreSharded overrides applied). PastWindow is always explicit, even
// when it was derived from Window.
func (d *Detector) Options() Options {
	opt := Options{
		Width:            d.cfg.Width,
		Height:           d.cfg.Height,
		Window:           d.cfg.WC,
		PastWindow:       d.cfg.WP,
		Alpha:            d.cfg.Alpha,
		AG2Gamma:         d.ag2Gamma,
		CountWindows:     d.counted,
		Shards:           d.shards,
		ShardBlockCols:   d.blkCols,
		ShardFlushEvents: d.flushEvs,
	}
	if d.cfg.Area != nil {
		opt.Area = &Region{
			MinX: d.cfg.Area.MinX, MinY: d.cfg.Area.MinY,
			MaxX: d.cfg.Area.MaxX, MaxY: d.cfg.Area.MaxY,
		}
	}
	return opt
}

// Push feeds one object into the stream, processes every window transition
// it makes due, and returns the refreshed bursty region. Objects must arrive
// in non-decreasing time order. On a sharded detector every Push is a full
// pipeline synchronisation; use PushBatch for throughput. On error the
// previous answer is retained and returned, exactly as for PushBatch. After
// Close it returns the last answer and ErrClosed.
func (d *Detector) Push(o Object) (Result, error) {
	if d.closed {
		return toResult(d.cur), ErrClosed
	}
	if d.pipe != nil {
		return d.pushSharded([]Object{o})
	}
	_, err := d.win.Push(core.Object{X: o.X, Y: o.Y, Weight: o.Weight, T: o.Time}, d.stepFn)
	if err != nil {
		return toResult(d.cur), err
	}
	if d.bestChain != nil {
		err = d.refreshFromBestChain()
	}
	return toResult(d.cur), err
}

// PushBatch feeds a time-ordered batch of objects and returns the bursty
// region after the whole batch has been processed. It amortises the
// per-arrival query refresh: window transitions are still applied one by
// one (so the final answer is identical to pushing the objects
// individually), but the detection engines are only queried once at the end
// of the batch — on the sharded pipeline this is the single synchronisation
// point, on the single-engine path it lets the lazy engines defer searches
// across the batch. On error the stream state includes every object before
// the offending one and the previous answer is retained. After Close it
// returns the last answer and ErrClosed.
func (d *Detector) PushBatch(objs []Object) (Result, error) {
	if d.closed {
		return toResult(d.cur), ErrClosed
	}
	if d.pipe != nil {
		return d.pushSharded(objs)
	}
	for _, o := range objs {
		if _, err := d.win.Push(core.Object{X: o.X, Y: o.Y, Weight: o.Weight, T: o.Time}, d.stepQuietFn); err != nil {
			return toResult(d.cur), err
		}
	}
	if d.engOff {
		var err error
		if d.bestChain != nil {
			err = d.refreshFromBestChain()
		}
		return toResult(d.cur), err
	}
	d.cur = d.eng.Best()
	return toResult(d.cur), nil
}

func (d *Detector) pushSharded(objs []Object) (Result, error) {
	for _, o := range objs {
		if _, err := d.win.Push(core.Object{X: o.X, Y: o.Y, Weight: o.Weight, T: o.Time}, d.routeStepFn); err != nil {
			return toResult(d.cur), err
		}
	}
	if d.engOff {
		var err error
		if d.bestChain != nil {
			err = d.refreshFromBestChain()
		}
		return toResult(d.cur), err
	}
	res, _, err := d.pipe.Query()
	if err != nil {
		d.recordErr(err)
		return toResult(d.cur), err
	}
	d.cur = res
	return toResult(d.cur), nil
}

// AdvanceTo moves the stream clock to t without a new arrival (processing
// any Grown/Expired transitions that become due) and returns the refreshed
// bursty region. On error the previous answer is retained and returned,
// exactly as for PushBatch. After Close it returns the last answer and
// ErrClosed.
func (d *Detector) AdvanceTo(t float64) (Result, error) {
	if d.closed {
		return toResult(d.cur), ErrClosed
	}
	if d.pipe != nil {
		if err := d.win.Advance(t, d.routeStepFn); err != nil {
			return toResult(d.cur), err
		}
		if d.engOff {
			var err error
			if d.bestChain != nil {
				err = d.refreshFromBestChain()
			}
			return toResult(d.cur), err
		}
		res, _, err := d.pipe.Query()
		if err != nil {
			d.recordErr(err)
			return toResult(d.cur), err
		}
		d.cur = res
		return toResult(d.cur), nil
	}
	if err := d.win.Advance(t, d.stepFn); err != nil {
		return toResult(d.cur), err
	}
	if d.engOff {
		var err error
		if d.bestChain != nil {
			err = d.refreshFromBestChain()
		}
		return toResult(d.cur), err
	}
	d.cur = d.eng.Best()
	return toResult(d.cur), nil
}

// step processes one window event and refreshes the current answer, matching
// the paper's continuous semantics (one detection per rectangle message).
// With the engines retired (AttachTopKBest) the taps already maintained the
// serving chain; Push/AdvanceTo refresh the answer from it once at the end.
func (d *Detector) step(ev core.Event) {
	d.trackLive(ev)
	if len(d.taps) != 0 {
		d.tap(ev)
	}
	if d.engOff {
		return
	}
	d.eng.Process(ev)
	d.cur = d.eng.Best()
}

// stepQuiet processes one window event without refreshing the answer
// (PushBatch refreshes once per batch).
func (d *Detector) stepQuiet(ev core.Event) {
	d.trackLive(ev)
	if len(d.taps) != 0 {
		d.tap(ev)
	}
	if d.engOff {
		return
	}
	d.eng.Process(ev)
}

// routeStep hands one window event to the sharded pipeline. Top-k
// detectors attached to a sharded parent ride the shard workers (ctaps),
// so there are no caller-side taps on this path.
func (d *Detector) routeStep(ev core.Event) {
	d.trackLive(ev)
	d.pipe.Route(ev)
}

// tap feeds one window event to the top-k detectors attached to a
// single-engine parent, on the caller's goroutine, so an attached engine
// observes exactly the single global stream order.
func (d *Detector) tap(ev core.Event) {
	for _, t := range d.taps {
		t.eng.Process(ev)
	}
}

// Best returns the current bursty region. On a sharded detector this is a
// pipeline synchronisation point; if the pipeline fails, the previous answer
// is served and the error is recorded for Err. After Close it keeps
// returning the answer captured at Close.
func (d *Detector) Best() Result {
	if d.closed {
		return toResult(d.cur)
	}
	if d.engOff {
		if d.bestChain != nil {
			d.refreshFromBestChain() // on failure serve the retained answer
		}
		return toResult(d.cur)
	}
	if d.pipe != nil {
		if res, _, err := d.pipe.Query(); err == nil {
			d.cur = res
		} else {
			d.recordErr(err)
		}
		return toResult(d.cur)
	}
	d.cur = d.eng.Best()
	return toResult(d.cur)
}

// refreshFromBestChain synchronises d.cur with the serving chain's rank-1
// region (AttachTopKBest), recording the first chain failure for Err. On
// failure the retained answer stands.
func (d *Detector) refreshFromBestChain() error {
	r, err := d.bestChain.rank1()
	if err != nil {
		d.recordErr(err)
		return err
	}
	d.cur = r
	return nil
}

// recordErr keeps the first pipeline failure for Err.
func (d *Detector) recordErr(err error) {
	if d.err == nil {
		d.err = err
	}
}

// Err returns the first error the sharded pipeline reported to a query or
// push, nil if none. A detector with a non-nil Err keeps serving its last
// good answer (Best) but can no longer refresh it; serving layers should
// surface the condition (the bundled server reports it on /healthz).
func (d *Detector) Err() error { return d.err }

// Now returns the current stream time.
func (d *Detector) Now() float64 { return d.win.Now() }

// Live returns the number of objects currently inside the two windows.
func (d *Detector) Live() int { return d.win.Live() }

// Shards returns the number of engine shards processing the stream (1 on
// the single-engine path, including the AG2 fallback).
func (d *Detector) Shards() int {
	if d.pipe != nil {
		return d.pipe.Shards()
	}
	return 1
}

// Close stops the detector: on the sharded path the shard goroutines are
// shut down after buffered events are flushed and a final synchronisation
// runs, so Best and Stats keep reporting the end-of-stream answer — and any
// top-k detectors attached to the shard workers capture their final answer
// too. After Close, Push, PushBatch and AdvanceTo return ErrClosed (on both
// the sharded and the single-engine path) while the query methods keep
// answering from the captured state. Close is idempotent.
func (d *Detector) Close() error {
	if d.closed {
		return nil
	}
	d.closed = true
	if d.pipe == nil {
		if d.engOff {
			if d.bestChain != nil {
				if r, err := d.bestChain.rank1(); err == nil {
					d.cur = r
				}
				d.finalStats = d.bestChain.Stats()
			}
			return nil
		}
		d.cur = d.eng.Best()
		if s, ok := d.eng.(statser); ok {
			d.finalStats = toStats(s.Stats())
		}
		return nil
	}
	for _, t := range d.ctaps {
		t.freeze()
	}
	if d.engOff {
		if d.bestChain != nil { // frozen above: serves its captured answer
			if r, err := d.bestChain.rank1(); err == nil {
				d.cur = r
			}
			d.finalStats = d.bestChain.Stats()
		}
		return d.pipe.Close()
	}
	if res, st, err := d.pipe.Query(); err == nil {
		d.cur = res
		d.finalStats = toStats(st)
	}
	return d.pipe.Close()
}

// Stats returns instrumentation counters for engines that expose them. On a
// sharded detector the per-shard counters are summed (a synchronisation
// point; after Close the counters captured at Close are returned); an event
// replicated into a halo is counted by each shard that received it, so
// Events can exceed the single-engine count while the search and cell
// counters match.
func (d *Detector) Stats() Stats {
	if d.closed {
		return d.finalStats
	}
	if d.engOff {
		if d.bestChain != nil {
			return d.bestChain.Stats()
		}
		return Stats{}
	}
	if d.pipe != nil {
		_, st, err := d.pipe.Query()
		if err != nil {
			d.recordErr(err)
			return Stats{}
		}
		return toStats(st)
	}
	if s, ok := d.eng.(statser); ok {
		return toStats(s.Stats())
	}
	return Stats{}
}

func toStats(st core.Stats) Stats {
	return Stats{
		Events:       st.Events,
		Searches:     st.Searches,
		SearchEvents: st.SearchEvents,
		SweepEntries: st.SweepEntries,
		CellsTouched: st.CellsTouched,
	}
}

func toResult(r core.Result) Result {
	if !r.Found {
		return Result{}
	}
	return Result{
		Region: Region{MinX: r.Region.MinX, MinY: r.Region.MinY, MaxX: r.Region.MaxX, MaxY: r.Region.MaxY},
		Score:  r.Score,
		Found:  true,
	}
}
